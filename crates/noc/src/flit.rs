//! Flit model: the unit of transfer on the MEDEA NoC.
//!
//! §II-D defines a three-level protocol carried in a single 64-bit flit
//! (Fig. 5):
//!
//! * **transport level** — validity bit + X-Y destination, used by switches;
//! * **bridge level** — `TYPE` (3 bits, seven packet types), `SUBTYPE`
//!   (2 bits) and `SEQ-NUM` (4 bits) used by the pif2NoC bridge and TIE
//!   interface;
//! * **application level** — `BURST-SIZE` (2 bits), `SRC-ID` (the linear
//!   node index of the sender; 4 bits on the paper's 4×4 torus, widening
//!   with the topology up to 8 bits on a 16×16) and a 32-bit data word,
//!   written and consumed by software.
//!
//! The struct here is the *semantic* view; the bit-exact wire form lives in
//! [`crate::codec`].

use crate::coord::Coord;
use medea_sim::Cycle;
use std::fmt;

/// The packet types of the 3-bit `TYPE` field (§II-D): six for
/// shared-memory transactions plus one for generic message passing. The
/// eighth (previously reserved) encoding carries hardware cache-coherence
/// traffic — a beyond-the-paper extension used only when the system is
/// configured for directory MESI instead of the paper's software DII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Single-word shared-memory read.
    SingleRead,
    /// Single-word shared-memory write.
    SingleWrite,
    /// Cache-line (4-word) shared-memory read.
    BlockRead,
    /// Cache-line (4-word) shared-memory write.
    BlockWrite,
    /// Lock a shared-memory word (atomic-section entry).
    Lock,
    /// Unlock a shared-memory word.
    Unlock,
    /// Generic message-passing flit (TIE interface traffic).
    Message,
    /// Directory-coherence protocol flit (beyond the paper; the `SEQ`
    /// field of request/ack flits carries a [`CohOp`] opcode).
    Coherence,
}

impl PacketKind {
    /// All kinds in `TYPE`-field encoding order.
    pub const ALL: [PacketKind; 8] = [
        PacketKind::SingleRead,
        PacketKind::SingleWrite,
        PacketKind::BlockRead,
        PacketKind::BlockWrite,
        PacketKind::Lock,
        PacketKind::Unlock,
        PacketKind::Message,
        PacketKind::Coherence,
    ];

    /// 3-bit wire encoding.
    pub const fn code(self) -> u8 {
        match self {
            PacketKind::SingleRead => 0,
            PacketKind::SingleWrite => 1,
            PacketKind::BlockRead => 2,
            PacketKind::BlockWrite => 3,
            PacketKind::Lock => 4,
            PacketKind::Unlock => 5,
            PacketKind::Message => 6,
            PacketKind::Coherence => 7,
        }
    }

    /// Decode the 3-bit `TYPE` field.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(PacketKind::SingleRead),
            1 => Some(PacketKind::SingleWrite),
            2 => Some(PacketKind::BlockRead),
            3 => Some(PacketKind::BlockWrite),
            4 => Some(PacketKind::Lock),
            5 => Some(PacketKind::Unlock),
            6 => Some(PacketKind::Message),
            7 => Some(PacketKind::Coherence),
            _ => None,
        }
    }

    /// Whether this kind belongs to the shared-memory protocol (i.e. it is
    /// handled by the pif2NoC bridge and the MPMMU rather than the TIE
    /// message interface).
    pub const fn is_shared_memory(self) -> bool {
        !matches!(self, PacketKind::Message)
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PacketKind::SingleRead => "single-read",
            PacketKind::SingleWrite => "single-write",
            PacketKind::BlockRead => "block-read",
            PacketKind::BlockWrite => "block-write",
            PacketKind::Lock => "lock",
            PacketKind::Unlock => "unlock",
            PacketKind::Message => "message",
            PacketKind::Coherence => "coherence",
        };
        f.write_str(s)
    }
}

/// Opcode of a [`PacketKind::Coherence`] request or ack flit, carried in
/// the 4-bit `SEQ` field (data flits keep `SEQ` as the word index, exactly
/// like block-read/-write streams).
///
/// The protocol is a directory MESI over the NoC: requesters send
/// `GetS`/`GetM`/`PutM` to the home bank; the home issues `Inv`/`Fetch`/
/// `FetchInv` probes to L1s; L1 responders answer with `InvAck`/`CleanAck`
/// or a 4-flit data stream; the home fills the requester with 4 data flits
/// plus a `GrantS`/`GrantE`/`GrantM` ack, then blocks until the requester's
/// `Unblock` confirms the line is installed (this handshake is what makes
/// the protocol race-free on an unordered deflection fabric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CohOp {
    /// Requester → home: read miss, wants the line in S (or E if sole).
    GetS,
    /// Requester → home: write miss/upgrade, wants the line in M.
    GetM,
    /// Owner → home: dirty-line writeback (eviction), followed by a
    /// grant/data-stream/ack exchange like a block write.
    PutM,
    /// Requester → home: fill installed, release the directory entry.
    Unblock,
    /// Home → sharer: invalidate the line, answer with `InvAck`.
    Inv,
    /// Home → owner: downgrade to S, answer with data (dirty) or
    /// `CleanAck`.
    Fetch,
    /// Home → owner: surrender the line, answer with data (dirty) or
    /// `CleanAck`, then invalidate.
    FetchInv,
    /// Sharer → home: invalidation done.
    InvAck,
    /// Owner → home: line was clean (or already gone); memory is current.
    CleanAck,
    /// Home → requester: fill grant, line state Shared.
    GrantS,
    /// Home → requester: fill grant, line state Exclusive.
    GrantE,
    /// Home → requester: fill grant, line state Modified.
    GrantM,
    /// Home → owner: start streaming the `PutM` data.
    PutMGrant,
    /// Home → owner: `PutM` committed (or discarded as stale).
    PutMAck,
}

impl CohOp {
    /// 4-bit `SEQ`-field encoding.
    pub const fn code(self) -> u8 {
        match self {
            CohOp::GetS => 0,
            CohOp::GetM => 1,
            CohOp::PutM => 2,
            CohOp::Unblock => 3,
            CohOp::Inv => 4,
            CohOp::Fetch => 5,
            CohOp::FetchInv => 6,
            CohOp::InvAck => 7,
            CohOp::CleanAck => 8,
            CohOp::GrantS => 9,
            CohOp::GrantE => 10,
            CohOp::GrantM => 11,
            CohOp::PutMGrant => 12,
            CohOp::PutMAck => 13,
        }
    }

    /// Decode a `SEQ`-field opcode.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(CohOp::GetS),
            1 => Some(CohOp::GetM),
            2 => Some(CohOp::PutM),
            3 => Some(CohOp::Unblock),
            4 => Some(CohOp::Inv),
            5 => Some(CohOp::Fetch),
            6 => Some(CohOp::FetchInv),
            7 => Some(CohOp::InvAck),
            8 => Some(CohOp::CleanAck),
            9 => Some(CohOp::GrantS),
            10 => Some(CohOp::GrantE),
            11 => Some(CohOp::GrantM),
            12 => Some(CohOp::PutMGrant),
            13 => Some(CohOp::PutMAck),
            _ => None,
        }
    }

    /// Short lowercase name for traces and diagnostics.
    pub const fn name(self) -> &'static str {
        match self {
            CohOp::GetS => "gets",
            CohOp::GetM => "getm",
            CohOp::PutM => "putm",
            CohOp::Unblock => "unblock",
            CohOp::Inv => "inv",
            CohOp::Fetch => "fetch",
            CohOp::FetchInv => "fetch-inv",
            CohOp::InvAck => "inv-ack",
            CohOp::CleanAck => "clean-ack",
            CohOp::GrantS => "grant-s",
            CohOp::GrantE => "grant-e",
            CohOp::GrantM => "grant-m",
            CohOp::PutMGrant => "putm-grant",
            CohOp::PutMAck => "putm-ack",
        }
    }
}

impl fmt::Display for CohOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The 2-bit `SUBTYPE` field (§II-D): for shared-memory packets it
/// distinguishes Ack/Nack from Address/Data payloads; for message-passing
/// flits it distinguishes requests from generic data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubKind {
    /// Carries an address / is a request-for-transaction token.
    Request,
    /// Carries a data word.
    Data,
    /// Positive acknowledge (grant / completion).
    Ack,
    /// Negative acknowledge (lock busy, resource unavailable).
    Nack,
}

impl SubKind {
    /// 2-bit wire encoding.
    pub const fn code(self) -> u8 {
        match self {
            SubKind::Request => 0,
            SubKind::Data => 1,
            SubKind::Ack => 2,
            SubKind::Nack => 3,
        }
    }

    /// Decode the 2-bit `SUBTYPE` field.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(SubKind::Request),
            1 => Some(SubKind::Data),
            2 => Some(SubKind::Ack),
            3 => Some(SubKind::Nack),
            _ => None,
        }
    }
}

impl fmt::Display for SubKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubKind::Request => "req",
            SubKind::Data => "data",
            SubKind::Ack => "ack",
            SubKind::Nack => "nack",
        };
        f.write_str(s)
    }
}

/// Width of the sequence-number field; bounds a logical packet to 16 flits
/// (§II-D: "sequence-number is a four bits field").
pub const SEQ_BITS: u32 = 4;
/// Maximum flits per logical packet given [`SEQ_BITS`].
pub const MAX_LOGICAL_PACKET: usize = 1 << SEQ_BITS;

/// Width of the burst-size field (§II-D: 2 bits).
pub const BURST_BITS: u32 = 2;

/// Width of the payload-checksum field.
///
/// Not part of Fig. 5 — a beyond-the-paper extension backing the fault
/// model: the sender folds the 32-bit data word into a 4-bit checksum so
/// receivers can detect in-flight payload corruption. Four bits keep the
/// widest (16×16-torus) format at exactly 64 bits.
pub const CKSUM_BITS: u32 = 4;

/// Fold a 32-bit payload into its 4-bit XOR-nibble checksum.
///
/// Flipping any single payload bit flips exactly one bit of the fold, so
/// every single-bit corruption is detected with certainty — the guarantee
/// the fault-injection tests lean on.
pub const fn payload_checksum(data: u32) -> u8 {
    let x = data ^ (data >> 16);
    let x = x ^ (x >> 8);
    let x = x ^ (x >> 4);
    (x & 0xF) as u8
}

/// Decode the 2-bit burst code into a flit count.
///
/// The paper gives the field width (2 bits) but not its encoding; since the
/// sequence number allows 16-flit logical packets, we use a geometric code
/// `{1, 2, 4, 16}` so that both a single-word transaction, a 4-word cache
/// line and a maximal message packet are representable. Documented design
/// choice (DESIGN.md §3.1).
pub const fn burst_len(code: u8) -> usize {
    match code & 0b11 {
        0 => 1,
        1 => 2,
        2 => 4,
        _ => 16,
    }
}

/// Encode a flit count into the smallest burst code covering it.
///
/// # Panics
///
/// Panics if `len` is zero or exceeds [`MAX_LOGICAL_PACKET`].
pub const fn burst_code(len: usize) -> u8 {
    assert!(len >= 1 && len <= MAX_LOGICAL_PACKET);
    match len {
        1 => 0,
        2 => 1,
        3 | 4 => 2,
        _ => 3,
    }
}

/// Simulation-only bookkeeping attached to a flit (not part of the wire
/// format): identity, timing and routing history for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlitMeta {
    /// Unique id assigned at injection (0 until injected).
    pub uid: u64,
    /// Cycle at which the flit entered the fabric.
    pub injected_at: Cycle,
    /// Routers traversed so far.
    pub hops: u16,
    /// Times this flit was deflected to a non-productive port.
    pub deflections: u16,
}

/// A single NoC flit: 64-bit wire payload plus simulation metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    dest: Coord,
    kind: PacketKind,
    sub: SubKind,
    seq: u8,
    burst: u8,
    src_id: u8,
    data: u32,
    checksum: u8,
    /// Simulation bookkeeping; mutated by the fabric.
    pub meta: FlitMeta,
}

impl Flit {
    /// Construct a flit with every wire field explicit.
    ///
    /// The `src_id` is the sender's linear node index; its `u8` type bounds
    /// it to the 256 nodes of the largest (16×16) torus, and the codec
    /// checks it against the actual per-topology field width at encode
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `seq` or `burst` exceed their field widths (4 and 2 bits
    /// respectively).
    pub fn new(
        dest: Coord,
        kind: PacketKind,
        sub: SubKind,
        seq: u8,
        burst: u8,
        src_id: u8,
        data: u32,
    ) -> Self {
        assert!(seq < (1 << SEQ_BITS), "seq {seq} exceeds 4-bit field");
        assert!(burst < (1 << BURST_BITS), "burst {burst} exceeds 2-bit field");
        Flit {
            dest,
            kind,
            sub,
            seq,
            burst,
            src_id,
            data,
            checksum: payload_checksum(data),
            meta: FlitMeta::default(),
        }
    }

    /// Convenience constructor for a message-passing data flit.
    pub fn message(dest: Coord, src_id: u8, seq: u8, burst: u8, data: u32) -> Self {
        Flit::new(dest, PacketKind::Message, SubKind::Data, seq, burst, src_id, data)
    }

    /// Convenience constructor for a shared-memory request token
    /// (`data` carries the word address).
    pub fn request(dest: Coord, kind: PacketKind, src_id: u8, addr: u32) -> Self {
        Flit::new(dest, kind, SubKind::Request, 0, 0, src_id, addr)
    }

    /// Convenience constructor for a coherence request/ack flit: the `SEQ`
    /// field carries the opcode and `data` the line address (or 0 for pure
    /// acks).
    pub fn coherence(dest: Coord, sub: SubKind, op: CohOp, src_id: u8, addr: u32) -> Self {
        Flit::new(dest, PacketKind::Coherence, sub, op.code(), 0, src_id, addr)
    }

    /// Opcode of a coherence request/ack flit ([`CohOp`] in the `SEQ`
    /// field); `None` for non-coherence flits and coherence *data* flits,
    /// whose `SEQ` is a word index.
    pub fn coh_op(&self) -> Option<CohOp> {
        if self.kind == PacketKind::Coherence && self.sub != SubKind::Data {
            CohOp::from_code(self.seq)
        } else {
            None
        }
    }

    /// Transport-level destination.
    pub const fn dest(&self) -> Coord {
        self.dest
    }

    /// Bridge-level packet type.
    pub const fn kind(&self) -> PacketKind {
        self.kind
    }

    /// Bridge-level subtype.
    pub const fn sub(&self) -> SubKind {
        self.sub
    }

    /// Sequence number within the logical packet (receiver-side reorder
    /// offset).
    pub const fn seq(&self) -> u8 {
        self.seq
    }

    /// Raw 2-bit burst code; see [`burst_len`].
    pub const fn burst(&self) -> u8 {
        self.burst
    }

    /// Number of flits in this flit's logical packet.
    pub const fn burst_flits(&self) -> usize {
        burst_len(self.burst)
    }

    /// Application-level source id: the sender's linear node index.
    pub const fn src_id(&self) -> u8 {
        self.src_id
    }

    /// 32-bit payload word (address for requests, data otherwise).
    pub const fn payload(&self) -> u32 {
        self.data
    }

    /// The 4-bit payload checksum computed at construction (stale after
    /// [`corrupt_payload_bit`](Flit::corrupt_payload_bit)).
    pub const fn checksum(&self) -> u8 {
        self.checksum
    }

    /// Whether the stored checksum still matches the payload. `false`
    /// means the data word was corrupted in flight.
    pub const fn checksum_ok(&self) -> bool {
        self.checksum == payload_checksum(self.data)
    }

    /// Flip one payload bit *without* refreshing the checksum, modelling a
    /// transient single-event upset on a link. Used by the fault injector;
    /// [`checksum_ok`](Flit::checksum_ok) detects every such flip.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not a payload bit index (0..32).
    pub fn corrupt_payload_bit(&mut self, bit: u8) {
        assert!(bit < 32, "payload bit {bit} out of range");
        self.data ^= 1 << bit;
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ->{} seq={} burst={} src={} data={:#010x}",
            self.kind, self.sub, self.dest, self.seq, self.burst, self.src_id, self.data
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for kind in PacketKind::ALL {
            assert_eq!(PacketKind::from_code(kind.code()), Some(kind));
        }
        // The 3-bit TYPE field is now fully assigned (code 7 = Coherence).
        assert_eq!(PacketKind::from_code(7), Some(PacketKind::Coherence));
        assert_eq!(PacketKind::from_code(8), None);
    }

    #[test]
    fn coh_op_codes_roundtrip() {
        for code in 0..16u8 {
            if let Some(op) = CohOp::from_code(code) {
                assert_eq!(op.code(), code);
            } else {
                assert!(code >= 14, "low opcode {code} unassigned");
            }
        }
        let f = Flit::coherence(Coord::new(1, 1), SubKind::Request, CohOp::GetM, 3, 0x40);
        assert_eq!(f.coh_op(), Some(CohOp::GetM));
        assert!(f.kind().is_shared_memory());
        // Coherence data flits keep SEQ as a word index, never an opcode.
        let d = Flit::new(Coord::new(1, 1), PacketKind::Coherence, SubKind::Data, 2, 2, 3, 7);
        assert_eq!(d.coh_op(), None);
        // Non-coherence flits never report an opcode.
        assert_eq!(Flit::request(Coord::new(0, 0), PacketKind::BlockRead, 0, 0).coh_op(), None);
    }

    #[test]
    fn sub_codes_roundtrip() {
        for code in 0..4 {
            let sub = SubKind::from_code(code).unwrap();
            assert_eq!(sub.code(), code);
        }
        assert_eq!(SubKind::from_code(4), None);
    }

    #[test]
    fn message_is_not_shared_memory() {
        assert!(!PacketKind::Message.is_shared_memory());
        assert!(PacketKind::BlockRead.is_shared_memory());
        assert!(PacketKind::Lock.is_shared_memory());
    }

    #[test]
    fn burst_code_covers_lengths() {
        for len in 1..=MAX_LOGICAL_PACKET {
            let code = burst_code(len);
            assert!(burst_len(code) >= len, "code {code} too small for {len}");
        }
        assert_eq!(burst_len(burst_code(4)), 4);
        assert_eq!(burst_len(burst_code(1)), 1);
    }

    #[test]
    fn field_width_asserts() {
        let d = Coord::new(0, 0);
        assert!(std::panic::catch_unwind(|| {
            Flit::new(d, PacketKind::Message, SubKind::Data, 16, 0, 0, 0)
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            Flit::new(d, PacketKind::Message, SubKind::Data, 0, 4, 0, 0)
        })
        .is_err());
        // src ids cover the full u8 range: node 255 of a 16x16 torus.
        let f = Flit::new(d, PacketKind::Message, SubKind::Data, 0, 0, 255, 0);
        assert_eq!(f.src_id(), 255);
    }

    #[test]
    fn checksum_detects_every_single_bit_flip() {
        for &data in &[0u32, 1, 0xDEAD_BEEF, u32::MAX, 0x8000_0001] {
            let f = Flit::message(Coord::new(0, 0), 0, 0, 0, data);
            assert!(f.checksum_ok());
            for bit in 0..32 {
                let mut c = f;
                c.corrupt_payload_bit(bit);
                assert!(!c.checksum_ok(), "flip of bit {bit} in {data:#x} undetected");
                // Flipping back restores a valid flit.
                c.corrupt_payload_bit(bit);
                assert!(c.checksum_ok());
            }
        }
    }

    #[test]
    fn accessors() {
        let f = Flit::request(Coord::new(1, 2), PacketKind::BlockRead, 3, 0x40);
        assert_eq!(f.dest(), Coord::new(1, 2));
        assert_eq!(f.kind(), PacketKind::BlockRead);
        assert_eq!(f.sub(), SubKind::Request);
        assert_eq!(f.src_id(), 3);
        assert_eq!(f.payload(), 0x40);
        assert_eq!(f.burst_flits(), 1);
        assert!(f.to_string().contains("block-read/req"));
    }
}
