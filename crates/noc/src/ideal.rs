//! Contention-free reference fabric for ablation studies.
//!
//! Delivers every flit after exactly `minimal_hops` cycles — the
//! zero-contention minimum of the real fabric — with unlimited bandwidth.
//! Comparing a run on [`IdealNetwork`] against [`crate::network::Network`]
//! isolates how much of the execution time is caused by deflection-routing
//! contention — the A2 ablation in DESIGN.md.

use crate::coord::Topology;
use crate::flit::Flit;
use crate::{Fabric, FabricStats};
use medea_sim::{ids::NodeId, Cycle};
use std::collections::VecDeque;

/// An idealized fabric with zero contention and infinite link bandwidth.
#[derive(Debug, Clone)]
pub struct IdealNetwork {
    topo: Topology,
    /// Flits in flight: `(deliver_at, destination, flit)`, kept sorted by
    /// insertion (delivery times are monotone per source but not globally,
    /// so tick scans; in-flight counts are small).
    in_transit: Vec<(Cycle, NodeId, Flit)>,
    eject_queues: Vec<VecDeque<Flit>>,
    stats: FabricStats,
    next_uid: u64,
}

impl IdealNetwork {
    /// Extra cycles charged on top of the minimal hop count. Zero: the
    /// ideal fabric is exactly the contention-free lower bound of the real
    /// one, whose per-hop cost is one cycle.
    pub const OVERHEAD_CYCLES: Cycle = 0;

    /// Build an ideal fabric with the same addressing as a real one.
    pub fn new(topo: Topology) -> Self {
        IdealNetwork {
            topo,
            in_transit: Vec::new(),
            eject_queues: (0..topo.nodes()).map(|_| VecDeque::new()).collect(),
            stats: FabricStats::default(),
            next_uid: 1,
        }
    }

    /// The topology this fabric was built for.
    pub const fn topology(&self) -> Topology {
        self.topo
    }
}

impl Fabric for IdealNetwork {
    fn try_inject(&mut self, node: NodeId, mut flit: Flit, now: Cycle) -> Result<(), Flit> {
        let src = self.topo.coord_of(node);
        let dest_node = self.topo.node_of(flit.dest());
        let hops = self.topo.distance(src, flit.dest()) as Cycle;
        flit.meta.injected_at = now;
        flit.meta.uid = self.next_uid;
        flit.meta.hops = hops as u16;
        self.next_uid += 1;
        self.stats.injected += 1;
        self.in_transit.push((now + hops + Self::OVERHEAD_CYCLES, dest_node, flit));
        Ok(())
    }

    fn eject(&mut self, node: NodeId) -> Option<Flit> {
        self.eject_queues[node.index()].pop_front()
    }

    fn tick(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.in_transit.len() {
            if self.in_transit[i].0 <= now {
                let (_, dest, flit) = self.in_transit.swap_remove(i);
                self.stats.delivered += 1;
                self.stats.latency.record(now.saturating_sub(flit.meta.injected_at));
                self.eject_queues[dest.index()].push_back(flit);
            } else {
                i += 1;
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.in_transit.len() + self.eject_queues.iter().map(VecDeque::len).sum::<usize>()
    }

    fn stats(&self) -> &FabricStats {
        &self.stats
    }

    fn node_count(&self) -> usize {
        self.topo.nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Coord;

    #[test]
    fn delivery_after_minimal_distance() {
        let topo = Topology::paper_4x4();
        let mut net = IdealNetwork::new(topo);
        let dest = NodeId::new(5); // (1,1): 2 hops from (0,0)
        let flit = Flit::message(Coord::new(1, 1), 0, 0, 0, 3);
        net.try_inject(NodeId::new(0), flit, 10).unwrap();
        for now in 10..12 {
            net.tick(now);
            assert!(net.eject(dest).is_none(), "too early at {now}");
        }
        net.tick(12);
        let f = net.eject(dest).expect("due at 12");
        assert_eq!(f.payload(), 3);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn injection_never_refused() {
        let topo = Topology::paper_4x4();
        let mut net = IdealNetwork::new(topo);
        for i in 0..100 {
            let f = Flit::message(Coord::new(3, 3), 0, 0, 0, i);
            assert!(net.try_inject(NodeId::new(0), f, 0).is_ok());
        }
        assert_eq!(net.stats().injected, 100);
        assert_eq!(net.stats().inject_refusals, 0);
    }

    #[test]
    fn zero_distance_delivered_same_cycle() {
        let topo = Topology::paper_4x4();
        let mut net = IdealNetwork::new(topo);
        let f = Flit::message(Coord::new(0, 0), 0, 0, 0, 1);
        net.try_inject(NodeId::new(0), f, 0).unwrap();
        net.tick(0);
        assert!(net.eject(NodeId::new(0)).is_some());
    }
}
