//! Property-based tests for the memory subsystem: the MPMMU must be
//! observationally equivalent to a flat memory under any interleaving of
//! single/block reads and writes, and the lock table must behave like a
//! map of owners.

use medea_mem::{LockTable, Mpmmu, MpmmuConfig};
use medea_noc::coord::{Coord, Topology};
use medea_noc::flit::{burst_code, Flit, PacketKind, SubKind};
use medea_sim::ids::NodeId;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Txn {
    SingleRead(u32),
    SingleWrite(u32, u32),
    BlockRead(u32),
    BlockWrite(u32, [u32; 4]),
}

fn word_addr() -> impl Strategy<Value = u32> {
    (0u32..256).prop_map(|w| w * 4)
}

fn line_addr() -> impl Strategy<Value = u32> {
    (0u32..64).prop_map(|l| l * 16)
}

fn txn() -> impl Strategy<Value = Txn> {
    prop_oneof![
        word_addr().prop_map(Txn::SingleRead),
        (word_addr(), any::<u32>()).prop_map(|(a, v)| Txn::SingleWrite(a, v)),
        line_addr().prop_map(Txn::BlockRead),
        (line_addr(), any::<[u32; 4]>()).prop_map(|(a, v)| Txn::BlockWrite(a, v)),
    ]
}

/// Drive one transaction through the MPMMU protocol from `src`, returning
/// the data flits observed.
fn drive(m: &mut Mpmmu, now: &mut u64, src: u8, t: Txn) -> Vec<Flit> {
    let mpmmu_at = Coord::new(0, 0);
    let req = |kind, addr| Flit::request(mpmmu_at, kind, src, addr);
    let mut collected = Vec::new();
    let submit = |m: &mut Mpmmu, flit| {
        m.handle_incoming(flit).expect("fifo space");
    };
    match t {
        Txn::SingleRead(a) => submit(m, req(PacketKind::SingleRead, a)),
        Txn::BlockRead(a) => submit(m, req(PacketKind::BlockRead, a)),
        Txn::SingleWrite(a, _) => submit(m, req(PacketKind::SingleWrite, a)),
        Txn::BlockWrite(a, _) => submit(m, req(PacketKind::BlockWrite, a)),
    }
    let expect_data = match t {
        Txn::SingleRead(_) => 1,
        Txn::BlockRead(_) => 4,
        _ => 0,
    };
    let mut sent_payload = false;
    for _ in 0..4000 {
        m.tick(*now);
        *now += 1;
        while let Some(f) = m.pop_outgoing() {
            match f.sub() {
                SubKind::Data => collected.push(f),
                SubKind::Ack => {
                    if f.seq() == 0 && !sent_payload {
                        // Grant: stream the payload.
                        sent_payload = true;
                        match t {
                            Txn::SingleWrite(_, v) => {
                                let d = Flit::new(
                                    Coord::new(0, 0),
                                    PacketKind::SingleWrite,
                                    SubKind::Data,
                                    0,
                                    0,
                                    src,
                                    v,
                                );
                                m.handle_incoming(d).expect("data fifo");
                            }
                            Txn::BlockWrite(_, vs) => {
                                for (i, v) in vs.iter().enumerate() {
                                    let d = Flit::new(
                                        Coord::new(0, 0),
                                        PacketKind::BlockWrite,
                                        SubKind::Data,
                                        i as u8,
                                        burst_code(4),
                                        src,
                                        *v,
                                    );
                                    m.handle_incoming(d).expect("data fifo");
                                }
                            }
                            _ => panic!("grant for a read"),
                        }
                    } else {
                        // Final ack: write complete.
                        return collected;
                    }
                }
                other => panic!("unexpected response subtype {other}"),
            }
            if collected.len() == expect_data && expect_data > 0 {
                return collected;
            }
        }
    }
    panic!("transaction did not complete: {t:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The MPMMU (including its local cache and DDR) is observationally a
    /// flat word-addressed memory.
    #[test]
    fn mpmmu_is_a_flat_memory(txns in proptest::collection::vec(txn(), 1..60)) {
        let topo = Topology::paper_4x4();
        let mut m = Mpmmu::new(topo, NodeId::new(0), MpmmuConfig::new(4, 4096));
        let mut reference = vec![0u32; 256];
        let mut now = 0u64;
        for (i, t) in txns.into_iter().enumerate() {
            let src = (1 + (i % 3)) as u8;
            let data = drive(&mut m, &mut now, src, t);
            match t {
                Txn::SingleRead(a) => {
                    prop_assert_eq!(data.len(), 1);
                    prop_assert_eq!(data[0].payload(), reference[a as usize / 4]);
                }
                Txn::BlockRead(a) => {
                    prop_assert_eq!(data.len(), 4);
                    let mut words = [0u32; 4];
                    for f in &data {
                        words[f.seq() as usize] = f.payload();
                    }
                    for (k, w) in words.iter().enumerate() {
                        prop_assert_eq!(*w, reference[a as usize / 4 + k]);
                    }
                }
                Txn::SingleWrite(a, v) => {
                    reference[a as usize / 4] = v;
                }
                Txn::BlockWrite(a, vs) => {
                    for (k, v) in vs.iter().enumerate() {
                        reference[a as usize / 4 + k] = *v;
                    }
                }
            }
        }
    }

    /// Lock table: at most one owner per word; unlock only by the owner;
    /// count is exact.
    #[test]
    fn lock_table_owner_map(ops in proptest::collection::vec((0u32..16, 0u8..4, any::<bool>()), 1..200)) {
        let mut table = LockTable::new();
        let mut model: std::collections::HashMap<u32, u8> = std::collections::HashMap::new();
        for (word, who, is_lock) in ops {
            let addr = word * 4;
            if is_lock {
                let granted = table.try_lock(addr, who);
                let expect = match model.get(&addr) {
                    None => { model.insert(addr, who); true }
                    Some(&owner) => owner == who,
                };
                prop_assert_eq!(granted, expect);
            } else {
                let result = table.unlock(addr, who);
                match model.get(&addr) {
                    Some(&owner) if owner == who => {
                        model.remove(&addr);
                        prop_assert!(result.is_ok());
                    }
                    _ => prop_assert!(result.is_err()),
                }
            }
            prop_assert_eq!(table.locked_count(), model.len());
        }
    }
}
