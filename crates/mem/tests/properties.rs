//! Property-based tests for the memory subsystem: the MPMMU must be
//! observationally equivalent to a flat memory under any interleaving of
//! single/block reads and writes, the bank map must be a stable
//! line-granularity partition of the address space, and the lock table
//! must behave like a map of owners over the full node-index range.

use medea_cache::LINE_BYTES;
use medea_mem::{BankMap, LockTable, Mpmmu, MpmmuConfig};
use medea_noc::coord::{Coord, Topology};
use medea_noc::flit::{burst_code, Flit, PacketKind, SubKind};
use medea_sim::ids::NodeId;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Txn {
    SingleRead(u32),
    SingleWrite(u32, u32),
    BlockRead(u32),
    BlockWrite(u32, [u32; 4]),
}

fn word_addr() -> impl Strategy<Value = u32> {
    (0u32..256).prop_map(|w| w * 4)
}

fn line_addr() -> impl Strategy<Value = u32> {
    (0u32..64).prop_map(|l| l * 16)
}

fn txn() -> impl Strategy<Value = Txn> {
    prop_oneof![
        word_addr().prop_map(Txn::SingleRead),
        (word_addr(), any::<u32>()).prop_map(|(a, v)| Txn::SingleWrite(a, v)),
        line_addr().prop_map(Txn::BlockRead),
        (line_addr(), any::<[u32; 4]>()).prop_map(|(a, v)| Txn::BlockWrite(a, v)),
    ]
}

/// Drive one transaction through the MPMMU protocol from `src`, returning
/// the data flits observed.
fn drive(m: &mut Mpmmu, now: &mut u64, src: u8, t: Txn) -> Vec<Flit> {
    let mpmmu_at = Coord::new(0, 0);
    let req = |kind, addr| Flit::request(mpmmu_at, kind, src, addr);
    let mut collected = Vec::new();
    let submit = |m: &mut Mpmmu, flit| {
        m.handle_incoming(flit).expect("fifo space");
    };
    match t {
        Txn::SingleRead(a) => submit(m, req(PacketKind::SingleRead, a)),
        Txn::BlockRead(a) => submit(m, req(PacketKind::BlockRead, a)),
        Txn::SingleWrite(a, _) => submit(m, req(PacketKind::SingleWrite, a)),
        Txn::BlockWrite(a, _) => submit(m, req(PacketKind::BlockWrite, a)),
    }
    let expect_data = match t {
        Txn::SingleRead(_) => 1,
        Txn::BlockRead(_) => 4,
        _ => 0,
    };
    let mut sent_payload = false;
    for _ in 0..4000 {
        m.tick(*now);
        *now += 1;
        while let Some(f) = m.pop_outgoing() {
            match f.sub() {
                SubKind::Data => collected.push(f),
                SubKind::Ack => {
                    if f.seq() == 0 && !sent_payload {
                        // Grant: stream the payload.
                        sent_payload = true;
                        match t {
                            Txn::SingleWrite(_, v) => {
                                let d = Flit::new(
                                    Coord::new(0, 0),
                                    PacketKind::SingleWrite,
                                    SubKind::Data,
                                    0,
                                    0,
                                    src,
                                    v,
                                );
                                m.handle_incoming(d).expect("data fifo");
                            }
                            Txn::BlockWrite(_, vs) => {
                                for (i, v) in vs.iter().enumerate() {
                                    let d = Flit::new(
                                        Coord::new(0, 0),
                                        PacketKind::BlockWrite,
                                        SubKind::Data,
                                        i as u8,
                                        burst_code(4),
                                        src,
                                        *v,
                                    );
                                    m.handle_incoming(d).expect("data fifo");
                                }
                            }
                            _ => panic!("grant for a read"),
                        }
                    } else {
                        // Final ack: write complete.
                        return collected;
                    }
                }
                other => panic!("unexpected response subtype {other}"),
            }
            if collected.len() == expect_data && expect_data > 0 {
                return collected;
            }
        }
    }
    panic!("transaction did not complete: {t:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The MPMMU (including its local cache and DDR) is observationally a
    /// flat word-addressed memory.
    #[test]
    fn mpmmu_is_a_flat_memory(txns in proptest::collection::vec(txn(), 1..60)) {
        let topo = Topology::paper_4x4();
        let mut m = Mpmmu::new(topo, NodeId::new(0), MpmmuConfig::new(4, 4096));
        let mut reference = vec![0u32; 256];
        let mut now = 0u64;
        for (i, t) in txns.into_iter().enumerate() {
            let src = (1 + (i % 3)) as u8;
            let data = drive(&mut m, &mut now, src, t);
            match t {
                Txn::SingleRead(a) => {
                    prop_assert_eq!(data.len(), 1);
                    prop_assert_eq!(data[0].payload(), reference[a as usize / 4]);
                }
                Txn::BlockRead(a) => {
                    prop_assert_eq!(data.len(), 4);
                    let mut words = [0u32; 4];
                    for f in &data {
                        words[f.seq() as usize] = f.payload();
                    }
                    for (k, w) in words.iter().enumerate() {
                        prop_assert_eq!(*w, reference[a as usize / 4 + k]);
                    }
                }
                Txn::SingleWrite(a, v) => {
                    reference[a as usize / 4] = v;
                }
                Txn::BlockWrite(a, vs) => {
                    for (k, v) in vs.iter().enumerate() {
                        reference[a as usize / 4 + k] = *v;
                    }
                }
            }
        }
    }

    /// Lock table: at most one owner per word; unlock only by the owner;
    /// count is exact. Requesters span the full 16×16-torus node-index
    /// range (0..=255), which a narrower id type would truncate.
    #[test]
    fn lock_table_owner_map(ops in proptest::collection::vec((0u32..16, prop_oneof![0u16..4, 252u16..=255], any::<bool>()), 1..200)) {
        let mut table = LockTable::new();
        let mut model: std::collections::HashMap<u32, u16> = std::collections::HashMap::new();
        for (word, who, is_lock) in ops {
            let addr = word * 4;
            if is_lock {
                let granted = table.try_lock(addr, NodeId::new(who));
                let expect = match model.get(&addr) {
                    None => { model.insert(addr, who); true }
                    Some(&owner) => owner == who,
                };
                prop_assert_eq!(granted, expect);
            } else {
                let result = table.unlock(addr, NodeId::new(who));
                match model.get(&addr) {
                    Some(&owner) if owner == who => {
                        model.remove(&addr);
                        prop_assert!(result.is_ok());
                    }
                    _ => prop_assert!(result.is_err()),
                }
            }
            prop_assert_eq!(table.locked_count(), model.len());
        }
    }

    /// Every address maps to exactly one bank, and the mapping is a pure
    /// function: repeated lookups agree, the bank index is in range, and
    /// the owning node/coordinate are consistent with the bank index.
    #[test]
    fn bank_map_is_a_stable_partition(addr in any::<u32>(), banks_log2 in 0u32..3) {
        let topo = Topology::new(8, 8).unwrap();
        let nodes: Vec<NodeId> = (0..1u16 << banks_log2).map(|k| NodeId::new(k * 9)).collect();
        let map = BankMap::new(topo, &nodes).unwrap();
        let bank = map.bank_of(addr);
        prop_assert!(bank < map.banks());
        prop_assert_eq!(map.bank_of(addr), bank, "mapping must be stable across calls");
        prop_assert_eq!(map.home_node(addr), map.node_of_bank(bank));
        prop_assert_eq!(map.home_coord(addr), map.coord_of_bank(bank));
        prop_assert_eq!(map.home_src_id(addr), map.node_of_bank(bank).index() as u8);
        // Line granularity: all four words of the line share the bank.
        let line = addr & !(LINE_BYTES as u32 - 1);
        for w in 0..4u32 {
            prop_assert_eq!(map.bank_of(line + w * 4), map.bank_of(line));
        }
    }

    /// A dense line range touches every bank, and evenly: line-granularity
    /// interleaving over a power-of-two count is a perfect round-robin.
    #[test]
    fn bank_map_dense_range_hits_all_banks(start_line in 0u32..1024, banks_log2 in 0u32..5) {
        let topo = Topology::new(16, 16).unwrap();
        let count = 1usize << banks_log2;
        let nodes: Vec<NodeId> = (0..count as u16).map(|k| NodeId::new(k * 16)).collect();
        let map = BankMap::new(topo, &nodes).unwrap();
        let mut hits = vec![0u32; count];
        for line in start_line..start_line + 4 * count as u32 {
            hits[map.bank_of(line * LINE_BYTES as u32)] += 1;
        }
        for (bank, h) in hits.iter().enumerate() {
            prop_assert_eq!(*h, 4, "bank {} not hit evenly by a dense range", bank);
        }
    }
}
