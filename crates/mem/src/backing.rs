//! Flat word-addressed backing store: the architectural content of the
//! external DDR memory.

use medea_cache::{Addr, WORDS_PER_LINE};

/// The DDR's architectural state: a flat array of 32-bit words.
///
/// All accesses are word- or line-aligned; the MEDEA data path is 32 bits
/// wide end to end (one word per flit).
#[derive(Debug, Clone)]
pub struct BackingStore {
    words: Vec<u32>,
}

impl BackingStore {
    /// Allocate `bytes` of zeroed memory (rounded up to a whole line).
    pub fn new(bytes: usize) -> Self {
        let lines = bytes.div_ceil(WORDS_PER_LINE * 4);
        BackingStore { words: vec![0; lines * WORDS_PER_LINE] }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 4
    }

    fn word_index(&self, addr: Addr) -> usize {
        assert_eq!(addr % 4, 0, "unaligned word access at {addr:#x}");
        let idx = addr as usize / 4;
        assert!(idx < self.words.len(), "address {addr:#x} beyond {} bytes of DDR", self.bytes());
        idx
    }

    /// Read the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range addresses — those are simulator
    /// bugs, not recoverable conditions.
    pub fn read_word(&self, addr: Addr) -> u32 {
        self.words[self.word_index(addr)]
    }

    /// Write the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range addresses.
    pub fn write_word(&mut self, addr: Addr, value: u32) {
        let idx = self.word_index(addr);
        self.words[idx] = value;
    }

    /// Read the full line at line-aligned `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line` is not line-aligned or out of range.
    pub fn read_line(&self, line: Addr) -> [u32; WORDS_PER_LINE] {
        assert_eq!(line as usize % (WORDS_PER_LINE * 4), 0, "unaligned line {line:#x}");
        let base = self.word_index(line);
        let mut out = [0u32; WORDS_PER_LINE];
        out.copy_from_slice(&self.words[base..base + WORDS_PER_LINE]);
        out
    }

    /// Write the full line at line-aligned `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line` is not line-aligned or out of range.
    pub fn write_line(&mut self, line: Addr, data: [u32; WORDS_PER_LINE]) {
        assert_eq!(line as usize % (WORDS_PER_LINE * 4), 0, "unaligned line {line:#x}");
        let base = self.word_index(line);
        self.words[base..base + WORDS_PER_LINE].copy_from_slice(&data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up_to_lines() {
        let s = BackingStore::new(17);
        assert_eq!(s.bytes(), 32);
    }

    #[test]
    fn word_roundtrip() {
        let mut s = BackingStore::new(64);
        s.write_word(0x3C, 0xABCD);
        assert_eq!(s.read_word(0x3C), 0xABCD);
        assert_eq!(s.read_word(0x38), 0);
    }

    #[test]
    fn line_roundtrip() {
        let mut s = BackingStore::new(64);
        s.write_line(0x10, [1, 2, 3, 4]);
        assert_eq!(s.read_line(0x10), [1, 2, 3, 4]);
        assert_eq!(s.read_word(0x18), 3);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn out_of_range_panics() {
        BackingStore::new(16).read_word(0x20);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_line_panics() {
        BackingStore::new(64).read_line(0x4);
    }
}
