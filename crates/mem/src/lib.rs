//! Memory subsystem of the MEDEA reproduction: backing store, DDR timing,
//! bank map, lock table and the **Multiprocessor Memory Management Unit**
//! (MPMMU).
//!
//! §II-C of the paper: the MPMMU is "a special processor which handles
//! shared-memory transactions (reads/writes) using a protocol defined by
//! the authors". It is a pure slave on the NoC with
//!
//! * two incoming FIFOs — **Pif-Request/Control** (depth = number of
//!   processors) and **Pif-Data** — plus one outgoing FIFO;
//! * a 4-phase write protocol (request → grant → data → final ack) and a
//!   2-phase read protocol (request → data), Fig. 4;
//! * a word-granularity **lock/unlock** mechanism for critical sections;
//! * a local cache for instructions and data in front of a DDR controller
//!   ("the latency of read operations strongly depends on the availability
//!   of the given word inside the cache").
//!
//! # Banked distributed shared memory
//!
//! Beyond the paper's single-slave instance, the shared address space can
//! be **distributed over N MPMMU banks** (N a power of two):
//!
//! * the [`BankMap`] interleaves addresses at cache-line granularity, so
//!   every address is owned by exactly one bank and block transfers never
//!   straddle banks;
//! * each bank is a full [`Mpmmu`] — its own FIFOs, local cache, DDR slice
//!   and [`LockTable`]. A lock word lives on exactly one bank, so per-bank
//!   tables preserve the single table's atomicity while lock traffic to
//!   different banks proceeds in parallel;
//! * responses carry the owning bank's node index in the `src-id` field,
//!   which is how a requester's reorder buffer keys data to the
//!   transaction it issued.
//!
//! With `N = 1` (the default everywhere) the bank map degenerates to the
//! paper's hardwired node-0 lookup and the system is bit-for-bit the
//! single-MPMMU instance.
//!
//! # Example
//!
//! ```
//! use medea_mem::{BackingStore, DdrModel};
//!
//! let mut store = BackingStore::new(1024);
//! store.write_word(0x10, 42);
//! assert_eq!(store.read_word(0x10), 42);
//! let ddr = DdrModel::default();
//! assert!(ddr.read_latency(4) > ddr.read_latency(1));
//! ```

mod backing;
mod bank;
mod ddr;
mod lock;
mod mpmmu;

pub use backing::BackingStore;
pub use bank::{BankMap, InvalidBankMapError, MAX_BANKS};
pub use ddr::DdrModel;
pub use lock::{LockTable, UnlockError};
pub use mpmmu::{Mpmmu, MpmmuConfig, MpmmuStats};
