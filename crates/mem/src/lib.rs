//! Memory subsystem of the MEDEA reproduction: backing store, DDR timing,
//! lock table and the **Multiprocessor Memory Management Unit** (MPMMU).
//!
//! §II-C of the paper: the MPMMU is "a special processor which handles
//! shared-memory transactions (reads/writes) using a protocol defined by
//! the authors". It is a pure slave on the NoC with
//!
//! * two incoming FIFOs — **Pif-Request/Control** (depth = number of
//!   processors) and **Pif-Data** — plus one outgoing FIFO;
//! * a 4-phase write protocol (request → grant → data → final ack) and a
//!   2-phase read protocol (request → data), Fig. 4;
//! * a word-granularity **lock/unlock** mechanism for critical sections;
//! * a local cache for instructions and data in front of a DDR controller
//!   ("the latency of read operations strongly depends on the availability
//!   of the given word inside the cache").
//!
//! # Example
//!
//! ```
//! use medea_mem::{BackingStore, DdrModel};
//!
//! let mut store = BackingStore::new(1024);
//! store.write_word(0x10, 42);
//! assert_eq!(store.read_word(0x10), 42);
//! let ddr = DdrModel::default();
//! assert!(ddr.read_latency(4) > ddr.read_latency(1));
//! ```

mod backing;
mod ddr;
mod lock;
mod mpmmu;

pub use backing::BackingStore;
pub use ddr::DdrModel;
pub use lock::{LockTable, UnlockError};
pub use mpmmu::{Mpmmu, MpmmuConfig, MpmmuStats};
