//! Address-interleaved distribution of the shared address space over N
//! MPMMU banks.
//!
//! The paper's simplest MEDEA implementation hardwires all memory-mapped
//! address space to the single MPMMU at node 0 (§II-B). The [`BankMap`]
//! generalizes that configuration memory: the 32-bit address space is
//! interleaved at cache-line granularity over `N` banks (`N` a power of
//! two), so consecutive lines land on different banks and any dense access
//! stream spreads evenly. `N = 1` degenerates to the paper's hardwired
//! single-slave lookup bit-for-bit.
//!
//! The map is a small `Copy` value shared by every pif2NoC bridge (to pick
//! the destination NoC address of a transaction) and by the system
//! assembler (to place one [`crate::Mpmmu`] per bank and route preloads).

use medea_cache::{line_of, Addr, LINE_BYTES};
use medea_noc::coord::{Coord, Topology};
use medea_sim::ids::NodeId;
use std::fmt;

/// Hard upper bound on the number of banks a [`BankMap`] can describe.
///
/// Sixteen single-ported slaves is already beyond any sensible fraction of
/// the largest (16×16) torus; the bound is what lets the map stay a flat
/// `Copy` value inside every bridge.
pub const MAX_BANKS: usize = 16;

/// Error constructing a [`BankMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidBankMapError(String);

impl fmt::Display for InvalidBankMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bank map: {}", self.0)
    }
}

impl std::error::Error for InvalidBankMapError {}

/// Line-interleaved address → bank lookup table.
///
/// Bank selection is pure address arithmetic: line index modulo the
/// (power-of-two) bank count. Every address therefore maps to exactly one
/// bank, the mapping is stateless and stable, and all four words of a
/// cache line share a bank — block transfers never straddle banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankMap {
    count: u8,
    nodes: [u16; MAX_BANKS],
    coords: [Coord; MAX_BANKS],
}

impl BankMap {
    /// Build the map for banks living at `nodes` of `topo`, in bank-index
    /// order.
    ///
    /// # Errors
    ///
    /// The bank count must be a power of two in `1..=MAX_BANKS` and the
    /// nodes must be distinct and on the torus.
    pub fn new(topo: Topology, nodes: &[NodeId]) -> Result<Self, InvalidBankMapError> {
        let count = nodes.len();
        if count == 0 || count > MAX_BANKS || !count.is_power_of_two() {
            return Err(InvalidBankMapError(format!(
                "bank count must be a power of two in 1..={MAX_BANKS}, got {count}"
            )));
        }
        let mut node_idx = [0u16; MAX_BANKS];
        let mut coords = [Coord::new(0, 0); MAX_BANKS];
        for (i, node) in nodes.iter().enumerate() {
            if node.index() >= topo.nodes() {
                return Err(InvalidBankMapError(format!("bank node {node} outside {topo}")));
            }
            if nodes[..i].contains(node) {
                return Err(InvalidBankMapError(format!("bank node {node} listed twice")));
            }
            node_idx[i] = node.index() as u16;
            coords[i] = topo.coord_of(*node);
        }
        Ok(BankMap { count: count as u8, nodes: node_idx, coords })
    }

    /// The paper's degenerate map: every address owned by the single bank
    /// at `node`.
    pub fn single(topo: Topology, node: NodeId) -> Self {
        BankMap::new(topo, &[node]).expect("a single bank is always a valid map")
    }

    /// Number of banks.
    pub const fn banks(&self) -> usize {
        self.count as usize
    }

    /// The bank owning `addr` (line-granularity interleave).
    pub const fn bank_of(&self, addr: Addr) -> usize {
        (line_of(addr) / LINE_BYTES as Addr) as usize & (self.count as usize - 1)
    }

    /// The node hosting bank `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn node_of_bank(&self, bank: usize) -> NodeId {
        assert!(bank < self.banks(), "bank {bank} outside {}-bank map", self.banks());
        NodeId::new(self.nodes[bank])
    }

    /// The torus coordinate of bank `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn coord_of_bank(&self, bank: usize) -> Coord {
        assert!(bank < self.banks(), "bank {bank} outside {}-bank map", self.banks());
        self.coords[bank]
    }

    /// The NoC coordinate a transaction on `addr` must be sent to.
    pub fn home_coord(&self, addr: Addr) -> Coord {
        self.coords[self.bank_of(addr)]
    }

    /// The node owning `addr`.
    pub fn home_node(&self, addr: Addr) -> NodeId {
        NodeId::new(self.nodes[self.bank_of(addr)])
    }

    /// The application-level source id responses from `addr`'s bank carry
    /// (its node index) — what a reorder buffer keys on.
    pub fn home_src_id(&self, addr: Addr) -> u8 {
        self.nodes[self.bank_of(addr)] as u8
    }

    /// Whether `node` hosts one of the banks.
    pub fn is_bank_node(&self, node: NodeId) -> bool {
        self.nodes[..self.banks()].contains(&(node.index() as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map2() -> BankMap {
        let topo = Topology::paper_4x4();
        BankMap::new(topo, &[NodeId::new(0), NodeId::new(8)]).unwrap()
    }

    #[test]
    fn single_bank_owns_everything() {
        let m = BankMap::single(Topology::paper_4x4(), NodeId::new(0));
        assert_eq!(m.banks(), 1);
        for addr in [0u32, 4, 16, 1024, 0xFFFF_FFF0] {
            assert_eq!(m.bank_of(addr), 0);
            assert_eq!(m.home_coord(addr), Coord::new(0, 0));
            assert_eq!(m.home_node(addr), NodeId::new(0));
        }
        assert!(m.is_bank_node(NodeId::new(0)));
        assert!(!m.is_bank_node(NodeId::new(1)));
    }

    #[test]
    fn lines_interleave_across_two_banks() {
        let m = map2();
        // Line 0 (bytes 0..16) → bank 0; line 1 (16..32) → bank 1.
        assert_eq!(m.bank_of(0x00), 0);
        assert_eq!(m.bank_of(0x0C), 0);
        assert_eq!(m.bank_of(0x10), 1);
        assert_eq!(m.bank_of(0x1C), 1);
        assert_eq!(m.bank_of(0x20), 0);
        assert_eq!(m.home_node(0x10), NodeId::new(8));
        assert_eq!(m.home_coord(0x10), Coord::new(0, 2));
        assert_eq!(m.home_src_id(0x10), 8);
    }

    #[test]
    fn words_of_a_line_share_a_bank() {
        let m = map2();
        for line in 0..64u32 {
            let base = line * LINE_BYTES as u32;
            let owner = m.bank_of(base);
            for w in 0..4u32 {
                assert_eq!(m.bank_of(base + w * 4), owner);
            }
        }
    }

    #[test]
    fn rejects_bad_maps() {
        let topo = Topology::paper_4x4();
        assert!(BankMap::new(topo, &[]).is_err(), "empty");
        let three = [NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        assert!(BankMap::new(topo, &three).is_err(), "not a power of two");
        assert!(BankMap::new(topo, &[NodeId::new(0), NodeId::new(0)]).is_err(), "duplicate");
        assert!(BankMap::new(topo, &[NodeId::new(0), NodeId::new(16)]).is_err(), "off torus");
        let big16 = Topology::new(16, 16).unwrap();
        let too_many: Vec<NodeId> = (0..32u16).map(NodeId::new).collect();
        assert!(BankMap::new(big16, &too_many).is_err(), "beyond MAX_BANKS");
    }
}
