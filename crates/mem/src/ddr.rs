//! DDR controller timing model.
//!
//! The paper attaches the MPMMU to "a PIF bus connected to a DDR
//! controller" without publishing its timing; we use a classic
//! first-word-latency + streaming model with DDR2-era constants
//! (DESIGN.md §6) — what matters for the reproduction is that a DDR access
//! is an order of magnitude slower than an MPMMU cache hit.

use medea_sim::Cycle;

/// Fixed-latency, streaming-bandwidth DDR timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdrModel {
    first_word: Cycle,
    per_extra_word: Cycle,
}

impl DdrModel {
    /// Create a model: `first_word` cycles to the first word of a burst,
    /// `per_extra_word` for each subsequent word.
    pub const fn new(first_word: Cycle, per_extra_word: Cycle) -> Self {
        DdrModel { first_word, per_extra_word }
    }

    /// Cycles to read a burst of `words` (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn read_latency(&self, words: usize) -> Cycle {
        assert!(words > 0, "zero-length burst");
        self.first_word + (words as Cycle - 1) * self.per_extra_word
    }

    /// Cycles to write a burst of `words` (≥ 1). Writes post into the
    /// controller's buffer, so they are charged the same as reads — a
    /// common simplification for closed-page controllers.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn write_latency(&self, words: usize) -> Cycle {
        self.read_latency(words)
    }
}

impl Default for DdrModel {
    /// DESIGN.md calibration: 24-cycle first word, 2 cycles per streamed
    /// word.
    fn default() -> Self {
        DdrModel::new(24, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_scaling() {
        let d = DdrModel::new(24, 2);
        assert_eq!(d.read_latency(1), 24);
        assert_eq!(d.read_latency(4), 30);
        assert_eq!(d.write_latency(4), 30);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_burst_panics() {
        DdrModel::default().read_latency(0);
    }
}
