//! Word-granularity lock table for atomic operations.
//!
//! §II-C: "In order to support atomic operations like critical sections, a
//! lock/unlock mechanism of a given word in shared-memory has been
//! implemented. Every processor which aims to access the shared memory
//! segment for read/write operations must first request lock."
//!
//! Each MPMMU bank owns one table covering the words interleaved onto it
//! (see [`crate::BankMap`]); a lock word never migrates between banks, so
//! per-bank tables are exactly as atomic as the paper's single one.
//! Requesters are identified by their full [`NodeId`] — on a 16×16 torus
//! node indices occupy the whole 0..=255 range, so the table must carry a
//! genuine node index, not a narrower application-level id.
//!
//! The paper does not specify what happens when a lock is busy; this
//! reproduction answers busy lock requests with a Nack and lets the
//! requesting bridge retry after a backoff (DESIGN.md §3.3).

use medea_cache::Addr;
use medea_sim::ids::NodeId;
use std::collections::HashMap;
use std::fmt;

/// Error returned when unlocking a word the requester does not hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnlockError {
    /// The word address involved.
    pub addr: Addr,
    /// The requester.
    pub requester: NodeId,
    /// Current owner, if any.
    pub owner: Option<NodeId>,
}

impl fmt::Display for UnlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.owner {
            Some(owner) => write!(
                f,
                "source {} tried to unlock {:#x} held by source {}",
                self.requester, self.addr, owner
            ),
            None => {
                write!(f, "source {} tried to unlock free word {:#x}", self.requester, self.addr)
            }
        }
    }
}

impl std::error::Error for UnlockError {}

/// Table of locked shared-memory words, keyed by word address.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    owners: HashMap<Addr, NodeId>,
}

impl LockTable {
    /// Empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Try to lock `addr` for `requester`. Granted when the word is free or
    /// already held by the same requester (idempotent re-lock); denied
    /// otherwise.
    pub fn try_lock(&mut self, addr: Addr, requester: NodeId) -> bool {
        match self.owners.get(&addr) {
            Some(&owner) => owner == requester,
            None => {
                self.owners.insert(addr, requester);
                true
            }
        }
    }

    /// Release `addr`, verifying ownership.
    ///
    /// # Errors
    ///
    /// Returns [`UnlockError`] if `requester` does not hold the lock —
    /// a software protocol violation the MPMMU answers with a Nack.
    pub fn unlock(&mut self, addr: Addr, requester: NodeId) -> Result<(), UnlockError> {
        match self.owners.get(&addr) {
            Some(&owner) if owner == requester => {
                self.owners.remove(&addr);
                Ok(())
            }
            owner => Err(UnlockError { addr, requester, owner: owner.copied() }),
        }
    }

    /// Current owner of `addr`, if locked.
    pub fn owner(&self, addr: Addr) -> Option<NodeId> {
        self.owners.get(&addr).copied()
    }

    /// Number of currently locked words.
    pub fn locked_count(&self) -> usize {
        self.owners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn lock_grant_and_deny() {
        let mut t = LockTable::new();
        assert!(t.try_lock(0x100, n(1)));
        assert!(!t.try_lock(0x100, n(2)));
        assert_eq!(t.owner(0x100), Some(n(1)));
        assert_eq!(t.locked_count(), 1);
    }

    #[test]
    fn relock_by_owner_is_idempotent() {
        let mut t = LockTable::new();
        assert!(t.try_lock(0x100, n(1)));
        assert!(t.try_lock(0x100, n(1)));
        assert_eq!(t.locked_count(), 1);
    }

    #[test]
    fn unlock_by_owner() {
        let mut t = LockTable::new();
        t.try_lock(0x100, n(1));
        t.unlock(0x100, n(1)).unwrap();
        assert_eq!(t.owner(0x100), None);
        assert!(t.try_lock(0x100, n(2)));
    }

    #[test]
    fn unlock_violations() {
        let mut t = LockTable::new();
        t.try_lock(0x100, n(1));
        let err = t.unlock(0x100, n(2)).unwrap_err();
        assert_eq!(err.owner, Some(n(1)));
        assert!(err.to_string().contains("held by source n1"));
        let err = t.unlock(0x200, n(2)).unwrap_err();
        assert_eq!(err.owner, None);
        // Violation must not disturb the table.
        assert_eq!(t.owner(0x100), Some(n(1)));
    }

    #[test]
    fn independent_words() {
        let mut t = LockTable::new();
        assert!(t.try_lock(0x100, n(1)));
        assert!(t.try_lock(0x104, n(2)));
        assert_eq!(t.locked_count(), 2);
    }

    #[test]
    fn full_node_range_distinguished() {
        // The 16×16 torus uses node indices up to 255: the table must key
        // the full range without truncation or aliasing.
        let mut t = LockTable::new();
        assert!(t.try_lock(0x100, n(255)));
        assert!(!t.try_lock(0x100, n(254)), "distinct high indices must not alias");
        assert_eq!(t.owner(0x100), Some(n(255)));
        assert!(t.unlock(0x100, n(254)).is_err(), "wrong owner rejected");
        t.unlock(0x100, n(255)).unwrap();
        assert_eq!(t.owner(0x100), None);
        assert!(t.try_lock(0x100, n(254)));
    }
}
