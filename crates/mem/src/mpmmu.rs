//! The Multiprocessor Memory Management Unit (§II-C, Fig. 4).
//!
//! A pure NoC slave serializing all shared-memory transactions:
//!
//! * **Read** (single/block): request token → MPMMU looks the data up in
//!   its local cache (DDR on miss) → data flit(s) through the outgoing
//!   FIFO. Block-read responses carry sequence numbers 0..3 so the
//!   requester's reorder buffer can handle out-of-order delivery.
//! * **Write** (single/block): request token → **grant** ack → requester
//!   streams data flits into the Pif-Data FIFO → MPMMU commits to memory →
//!   **final** ack. The two-step handshake is the paper's implicit
//!   flow-control scheme that keeps MPMMU buffering minimal.
//! * **Lock/Unlock**: word-granularity lock table; busy locks are Nack'd
//!   and the requesting bridge retries (documented design choice).
//!
//! Source identification: the application-level `src-id` field equals the
//! linear node index of the requester (the field is sized per topology to
//! hold a full node index, up to 256 nodes on a 16×16 torus), which is
//! how responses find their way back.
//!
//! # Tiled execution
//!
//! Under the tiled parallel cycle engine each MPMMU bank is owned
//! exclusively by the tile that owns its node: a bank only ever observes
//! flits ejected from its own router and only injects into its own
//! router, so bank state needs no synchronization — the per-cycle
//! barrier and the fixed tile-order merge of boundary latches are the
//! only cross-tile channels. `Mpmmu` is therefore deliberately
//! `Send`-but-not-`Sync` (plain `Cell`-based counters, no atomics): a
//! bank moves to its owning worker thread and stays there for the whole
//! run (asserted below).

use crate::backing::BackingStore;
use crate::ddr::DdrModel;
use crate::lock::LockTable;
use medea_cache::{
    line_of, Addr, CacheConfig, CachePolicy, CoherenceMode, CoherenceStats, SetAssocCache,
    StoreOutcome, WORDS_PER_LINE,
};
use medea_fault::{FaultInjector, NullInjector};
use medea_noc::coord::Topology;
use medea_noc::flit::{burst_code, CohOp, Flit, PacketKind, SubKind};
use medea_sim::fifo::Fifo;
use medea_sim::ids::NodeId;
use medea_sim::stats::Counter;
use medea_sim::Cycle;
use medea_trace::{NullSink, TraceEvent, TraceSink};
use std::collections::{HashMap, VecDeque};

/// MPMMU configuration.
#[derive(Debug, Clone, Copy)]
pub struct MpmmuConfig {
    /// Number of processors in the system: the depth of the
    /// Pif-Request/Control queue ("the depth of this queue is as large as
    /// the number of processors", §II-C).
    pub num_procs: usize,
    /// Depth of the Pif-Data queue.
    pub data_fifo_depth: usize,
    /// Depth of the outgoing FIFO.
    pub out_fifo_depth: usize,
    /// Fixed per-transaction processing cost of the "special processor".
    pub service_overhead: Cycle,
    /// Latency of an MPMMU-cache hit.
    pub cache_hit_latency: Cycle,
    /// Geometry of the MPMMU-local cache.
    pub cache: CacheConfig,
    /// Size of the DDR backing store in bytes.
    pub mem_bytes: usize,
    /// DDR timing.
    pub ddr: DdrModel,
    /// Coherence protocol the system runs. Under [`CoherenceMode::Dii`]
    /// (the paper-faithful default) no `Coherence` flits ever exist and
    /// the directory machinery below is dead weight with zero timing
    /// effect; under [`CoherenceMode::MesiDirectory`] this bank is the
    /// directory home for every line the `BankMap` assigns it.
    pub coherence: CoherenceMode,
}

impl MpmmuConfig {
    /// Paper-flavoured defaults for a system with `num_procs` processors
    /// and `mem_bytes` of DDR.
    pub fn new(num_procs: usize, mem_bytes: usize) -> Self {
        MpmmuConfig {
            num_procs: num_procs.max(1),
            data_fifo_depth: 16,
            out_fifo_depth: 16,
            service_overhead: 4,
            cache_hit_latency: 2,
            cache: CacheConfig::new(16 * 1024, CachePolicy::WriteBack)
                .expect("16 kB WB is a valid geometry"),
            mem_bytes,
            ddr: DdrModel::default(),
            coherence: CoherenceMode::Dii,
        }
    }
}

/// Transaction counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MpmmuStats {
    /// Single-read transactions served.
    pub single_reads: Counter,
    /// Block-read transactions served.
    pub block_reads: Counter,
    /// Single-write transactions committed.
    pub single_writes: Counter,
    /// Block-write transactions committed.
    pub block_writes: Counter,
    /// Lock requests granted.
    pub locks_granted: Counter,
    /// Lock requests Nack'd (busy).
    pub lock_nacks: Counter,
    /// Unlocks performed.
    pub unlocks: Counter,
    /// Unlock protocol violations (Nack'd).
    pub unlock_errors: Counter,
    /// Cycles spent busy (serving or awaiting write data).
    pub busy_cycles: Counter,
    /// Flits dropped because they were not valid MPMMU traffic.
    pub protocol_drops: Counter,
}

impl MpmmuStats {
    /// Accumulate another bank's counters into this one (the per-bank →
    /// aggregate reduction of a banked system's run report).
    pub fn merge(&mut self, other: &MpmmuStats) {
        self.single_reads.add(other.single_reads.get());
        self.block_reads.add(other.block_reads.get());
        self.single_writes.add(other.single_writes.get());
        self.block_writes.add(other.block_writes.get());
        self.locks_granted.add(other.locks_granted.get());
        self.lock_nacks.add(other.lock_nacks.get());
        self.unlocks.add(other.unlocks.get());
        self.unlock_errors.add(other.unlock_errors.get());
        self.busy_cycles.add(other.busy_cycles.get());
        self.protocol_drops.add(other.protocol_drops.get());
    }
}

#[derive(Debug, Clone)]
enum State {
    Idle,
    /// Serving: responses emitted when `until` is reached.
    Busy {
        until: Cycle,
        then: Completion,
    },
    /// Write in flight: grant sent, awaiting `expect` data flits from
    /// `src`.
    AwaitData {
        src: u8,
        kind: PacketKind,
        addr: Addr,
        words: Vec<Option<u32>>,
        expect: usize,
    },
    /// Directory transaction in flight: probes sent, collecting
    /// invalidation acks and/or the owner's data (MESI mode only).
    CohCollect(CohCollect),
    /// Fill sent; blocked until the requester's `Unblock` confirms the
    /// line is installed. Serializing here is what makes the protocol
    /// race-free on the unordered deflection fabric: no probe for this
    /// line can be generated before its fill is architecturally visible.
    CohAwaitUnblock,
}

/// In-flight directory transaction: what the home is still waiting for
/// before it can fill the requester.
#[derive(Debug, Clone)]
struct CohCollect {
    /// Line-aligned address of the transaction.
    line: Addr,
    /// Requesting node (fill destination).
    req: u8,
    /// `true` for `GetM` (grant M), `false` for `GetS` (grant S).
    want_m: bool,
    /// The previous owner, kept as a sharer after a `GetS` downgrade.
    prev_owner: Option<u8>,
    /// `Inv` probes still unacknowledged.
    pending_acks: usize,
    /// Still waiting for the owner's data or `CleanAck`.
    need_owner: bool,
    /// Dirty data streamed back by the owner (all-`Some` = complete).
    data: [Option<u32>; WORDS_PER_LINE],
}

impl CohCollect {
    fn done(&self) -> bool {
        self.pending_acks == 0 && !self.need_owner
    }
}

/// Per-line directory entry of a MESI home bank. Invalid (uncached) is
/// represented by absence.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirEntry {
    /// Clean copies at these nodes (insertion-ordered, so probe order is
    /// deterministic).
    Shared(Vec<u16>),
    /// Sole copy at this node, possibly dirty (L1 state E or M).
    Owned(u16),
}

#[derive(Debug, Clone)]
enum Completion {
    /// Emit these flits, then go idle.
    Respond(Vec<Flit>),
    /// Emit a grant for a write and start collecting data.
    Grant { src: u8, kind: PacketKind, addr: Addr, expect: usize },
    /// Emit a coherence fill (4 data flits + grant), then await Unblock.
    CohFill(Vec<Flit>),
    /// Emit directory probes, then collect their acks/data.
    CohProbes { probes: Vec<Flit>, collect: CohCollect },
}

/// The MPMMU node model.
#[derive(Debug, Clone)]
pub struct Mpmmu {
    topo: Topology,
    node: NodeId,
    cfg: MpmmuConfig,
    req_fifo: Fifo<Flit>,
    data_fifo: Fifo<Flit>,
    staging: VecDeque<Flit>,
    out_fifo: Fifo<Flit>,
    cache: SetAssocCache,
    store: BackingStore,
    locks: LockTable,
    state: State,
    stats: MpmmuStats,
    /// MESI directory for the lines this bank is home to. Empty (and
    /// never touched) under [`CoherenceMode::Dii`].
    dir: HashMap<Addr, DirEntry>,
    coh_stats: CoherenceStats,
}

impl Mpmmu {
    /// Build the MPMMU at `node` of `topo`.
    pub fn new(topo: Topology, node: NodeId, cfg: MpmmuConfig) -> Self {
        Mpmmu {
            topo,
            node,
            req_fifo: Fifo::new("mpmmu-req", cfg.num_procs),
            data_fifo: Fifo::new("mpmmu-data", cfg.data_fifo_depth),
            staging: VecDeque::new(),
            out_fifo: Fifo::new("mpmmu-out", cfg.out_fifo_depth),
            cache: SetAssocCache::new(cfg.cache),
            store: BackingStore::new(cfg.mem_bytes),
            locks: LockTable::new(),
            state: State::Idle,
            cfg,
            stats: MpmmuStats::default(),
            dir: HashMap::new(),
            coh_stats: CoherenceStats::default(),
        }
    }

    /// The node this MPMMU occupies.
    pub const fn node(&self) -> NodeId {
        self.node
    }

    /// Transaction statistics.
    pub const fn stats(&self) -> &MpmmuStats {
        &self.stats
    }

    /// MPMMU-local cache statistics.
    pub fn cache_stats(&self) -> &medea_cache::CacheStats {
        self.cache.stats()
    }

    /// Directory-side coherence counters (all zero under
    /// [`CoherenceMode::Dii`]).
    pub const fn coherence_stats(&self) -> &CoherenceStats {
        &self.coh_stats
    }

    /// Current `(request, data, out)` FIFO occupancies — the metrics
    /// sampler's bank-pressure snapshot. Data counts the staging queue
    /// too: flits parked there are still buffered in the bank.
    pub fn fifo_occupancy(&self) -> (usize, usize, usize) {
        (self.req_fifo.len(), self.data_fifo.len() + self.staging.len(), self.out_fifo.len())
    }

    /// Direct (zero-time) access to the architectural memory content.
    /// Used for program loading before reset and for result checking after
    /// the run — never during simulation.
    pub fn debug_store(&mut self) -> &mut BackingStore {
        &mut self.store
    }

    /// Read a word's architecturally current value, looking through the
    /// MPMMU cache first (the cache may hold lines newer than DDR).
    pub fn debug_read_word(&mut self, addr: Addr) -> u32 {
        if self.cache.probe(addr) {
            self.cache.load_word(addr).expect("probed resident")
        } else {
            self.store.read_word(addr)
        }
    }

    /// Deliver a flit ejected from the NoC at the MPMMU node.
    ///
    /// # Errors
    ///
    /// Returns the flit back if its target FIFO is full; the caller should
    /// retry next cycle (the node interface holds it).
    pub fn handle_incoming(&mut self, flit: Flit) -> Result<(), Flit> {
        if flit.kind() == PacketKind::Coherence {
            return self.handle_coherence(flit);
        }
        if !flit.kind().is_shared_memory() {
            // Message traffic addressed at the MPMMU is a software bug;
            // drop it loudly in stats.
            self.stats.protocol_drops.inc();
            return Ok(());
        }
        match flit.sub() {
            SubKind::Request => self.req_fifo.push(flit).map_err(|e| e.0),
            SubKind::Data => self.data_fifo.push(flit).map_err(|e| e.0),
            SubKind::Ack | SubKind::Nack => {
                self.stats.protocol_drops.inc();
                Ok(())
            }
        }
    }

    /// Route a coherence flit: transaction-starting ops queue behind the
    /// ordinary request FIFO (one serialization point per bank — the
    /// directory's race-freedom argument); everything else is a reply to
    /// the in-flight transaction and is absorbed immediately.
    fn handle_coherence(&mut self, flit: Flit) -> Result<(), Flit> {
        match flit.sub() {
            SubKind::Request => match flit.coh_op() {
                Some(CohOp::GetS | CohOp::GetM | CohOp::PutM) => {
                    self.req_fifo.push(flit).map_err(|e| e.0)
                }
                Some(CohOp::Unblock) => {
                    if matches!(self.state, State::CohAwaitUnblock) {
                        self.state = State::Idle;
                    } else {
                        self.stats.protocol_drops.inc();
                    }
                    Ok(())
                }
                _ => {
                    self.stats.protocol_drops.inc();
                    Ok(())
                }
            },
            SubKind::Data => match &mut self.state {
                // PutM writeback stream: rides the ordinary write path.
                State::AwaitData { kind: PacketKind::Coherence, .. } => {
                    self.data_fifo.push(flit).map_err(|e| e.0)
                }
                // Dirty line flushed by a probed owner.
                State::CohCollect(c) => {
                    let seq = flit.seq() as usize;
                    if seq < WORDS_PER_LINE {
                        c.data[seq] = Some(flit.payload());
                        if c.data.iter().all(Option::is_some) {
                            c.need_owner = false;
                        }
                    } else {
                        self.stats.protocol_drops.inc();
                    }
                    Ok(())
                }
                _ => {
                    self.stats.protocol_drops.inc();
                    Ok(())
                }
            },
            SubKind::Ack => {
                match (&mut self.state, flit.coh_op()) {
                    (State::CohCollect(c), Some(CohOp::InvAck)) => {
                        c.pending_acks = c.pending_acks.saturating_sub(1);
                    }
                    (State::CohCollect(c), Some(CohOp::CleanAck)) => {
                        c.need_owner = false;
                    }
                    _ => self.stats.protocol_drops.inc(),
                }
                Ok(())
            }
            SubKind::Nack => {
                self.stats.protocol_drops.inc();
                Ok(())
            }
        }
    }

    /// Pop the next response flit to inject into the NoC.
    pub fn pop_outgoing(&mut self) -> Option<Flit> {
        self.out_fifo.pop()
    }

    /// Put back a response flit the router refused this cycle.
    pub fn return_outgoing(&mut self, flit: Flit) {
        // Front of the queue: ordering must be preserved.
        let mut rest: Vec<Flit> = std::iter::once(flit).chain(self.drain_out()).collect();
        for f in rest.drain(..) {
            self.out_fifo.push(f).expect("refill cannot exceed prior occupancy + 1");
        }
    }

    fn drain_out(&mut self) -> Vec<Flit> {
        let mut v = Vec::with_capacity(self.out_fifo.len());
        while let Some(f) = self.out_fifo.pop() {
            v.push(f);
        }
        v
    }

    /// Whether the MPMMU has no work at all (fast-forward predicate).
    pub fn is_idle(&self) -> bool {
        matches!(self.state, State::Idle)
            && self.req_fifo.is_empty()
            && self.data_fifo.is_empty()
            && self.staging.is_empty()
            && self.out_fifo.is_empty()
    }

    /// The cycle at which the current service completes, if busy.
    pub fn busy_until(&self) -> Option<Cycle> {
        match &self.state {
            State::Busy { until, .. } => Some(*until),
            _ => None,
        }
    }

    /// Advance one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_traced(now, &mut NullSink);
    }

    /// [`tick`](Mpmmu::tick) with per-bank transaction and lock events
    /// reported to `sink` (emitted at request dispatch). With an inactive
    /// sink every emission site constant-folds away.
    pub fn tick_traced<S: TraceSink>(&mut self, now: Cycle, sink: &mut S) {
        self.tick_faulted(now, sink, &mut NullInjector);
    }

    /// [`tick_traced`](Mpmmu::tick_traced) with bank faults drawn from
    /// `injector`: read-response **drops** (SingleRead/BlockRead `Data`
    /// flits discarded at the staging → out-FIFO boundary — write acks,
    /// grants and lock traffic are exempt, mirroring the bridge's
    /// reads-only retry) and service **delays** (extra cycles folded into
    /// the dispatch overhead). The drop decision is rolled per (bank,
    /// cycle): response flits staged in the same cycle share its fate, so
    /// a lost block read loses the whole line — the coarsest loss the
    /// bridge's timeout must recover from. With [`NullInjector`] every
    /// site constant-folds away and this is exactly `tick_traced`.
    pub fn tick_faulted<S: TraceSink, I: FaultInjector>(
        &mut self,
        now: Cycle,
        sink: &mut S,
        injector: &mut I,
    ) {
        // Move staged responses into the bounded outgoing FIFO.
        while let Some(&f) = self.staging.front() {
            if I::ACTIVE
                && f.sub() == SubKind::Data
                && matches!(f.kind(), PacketKind::SingleRead | PacketKind::BlockRead)
                && injector.bank_drop(now, self.node.index() as u16)
            {
                self.staging.pop_front();
                if S::ACTIVE {
                    sink.record(now, TraceEvent::FaultBankDrop { bank: self.node.index() as u16 });
                }
                continue;
            }
            match self.out_fifo.push(f) {
                Ok(()) => {
                    self.staging.pop_front();
                }
                Err(_) => break,
            }
        }

        if !matches!(self.state, State::Idle) {
            self.stats.busy_cycles.inc();
        }

        match std::mem::replace(&mut self.state, State::Idle) {
            State::Idle => self.dispatch(now, sink, injector),
            State::Busy { until, then } => {
                if now >= until {
                    self.complete(then);
                } else {
                    self.state = State::Busy { until, then };
                }
            }
            State::AwaitData { src, kind, addr, mut words, expect } => {
                while let Some(flit) = self.data_fifo.pop() {
                    debug_assert_eq!(flit.src_id(), src, "interleaved write data");
                    let seq = flit.seq() as usize;
                    if seq < words.len() {
                        words[seq] = Some(flit.payload());
                    } else {
                        self.stats.protocol_drops.inc();
                    }
                }
                if words.iter().take(expect).all(Option::is_some) {
                    let latency = self.commit_write(src, kind, addr, &words, expect);
                    let seq = if kind == PacketKind::Coherence { CohOp::PutMAck.code() } else { 1 };
                    let ack = self.response(src, kind, SubKind::Ack, seq, addr);
                    self.state =
                        State::Busy { until: now + latency, then: Completion::Respond(vec![ack]) };
                } else {
                    self.state = State::AwaitData { src, kind, addr, words, expect };
                }
            }
            State::CohCollect(c) => {
                if c.done() {
                    // All-`Some` data means the owner flushed a dirty
                    // line; all-`None` means every probe was answered
                    // clean (memory already current).
                    let dirty = c.data.iter().all(Option::is_some);
                    let mut lat = 0;
                    if dirty {
                        let mut arr = [0u32; WORDS_PER_LINE];
                        for (i, w) in c.data.iter().enumerate() {
                            arr[i] = w.expect("dirty ⇒ all words collected");
                        }
                        lat += self.mem_write_line(c.line, arr);
                    }
                    let entry = if c.want_m {
                        DirEntry::Owned(c.req as u16)
                    } else {
                        let mut v = Vec::with_capacity(2);
                        if let Some(o) = c.prev_owner {
                            v.push(o as u16);
                        }
                        v.push(c.req as u16);
                        DirEntry::Shared(v)
                    };
                    let grant = if c.want_m { CohOp::GrantM } else { CohOp::GrantS };
                    self.dir_insert(c.line, entry);
                    let (flits, rlat) = self.build_fill(c.req, c.line, grant);
                    self.state =
                        State::Busy { until: now + lat + rlat, then: Completion::CohFill(flits) };
                } else {
                    self.state = State::CohCollect(c);
                }
            }
            // Released by the requester's Unblock in `handle_coherence`.
            State::CohAwaitUnblock => self.state = State::CohAwaitUnblock,
        }
    }

    fn dispatch<S: TraceSink, I: FaultInjector>(
        &mut self,
        now: Cycle,
        sink: &mut S,
        injector: &mut I,
    ) {
        let Some(req) = self.req_fifo.pop() else {
            return;
        };
        debug_assert_eq!(req.sub(), SubKind::Request);
        let src = req.src_id();
        let addr = req.payload();
        let mut overhead = self.cfg.service_overhead;
        if I::ACTIVE {
            // A slow bank is slow for every transaction it serves: the
            // injected delay rides the service overhead all kinds share.
            let extra = injector.bank_delay(now, self.node.index() as u16);
            if extra > 0 {
                overhead += extra as Cycle;
                if S::ACTIVE {
                    sink.record(
                        now,
                        TraceEvent::FaultBankDelay {
                            bank: self.node.index() as u16,
                            cycles: extra,
                        },
                    );
                }
            }
        }
        if S::ACTIVE
            && !matches!(req.kind(), PacketKind::Lock | PacketKind::Unlock | PacketKind::Coherence)
        {
            sink.record(
                now,
                TraceEvent::MemTxn {
                    bank: self.node.index() as u16,
                    src: src as u16,
                    kind: req.kind().code(),
                    addr,
                },
            );
        }
        match req.kind() {
            PacketKind::SingleRead => {
                let (value, lat) = self.mem_read_word(addr);
                self.stats.single_reads.inc();
                let data = self.response(src, PacketKind::SingleRead, SubKind::Data, 0, value);
                self.state = State::Busy {
                    until: now + overhead + lat,
                    then: Completion::Respond(vec![data]),
                };
            }
            PacketKind::BlockRead => {
                let line = line_of(addr);
                let (data, lat) = self.mem_read_line(line);
                self.stats.block_reads.inc();
                let flits = data
                    .iter()
                    .enumerate()
                    .map(|(i, w)| {
                        let mut f =
                            self.response(src, PacketKind::BlockRead, SubKind::Data, i as u8, *w);
                        f = Flit::new(
                            f.dest(),
                            f.kind(),
                            f.sub(),
                            i as u8,
                            burst_code(WORDS_PER_LINE),
                            f.src_id(),
                            f.payload(),
                        );
                        f
                    })
                    .collect();
                self.state =
                    State::Busy { until: now + overhead + lat, then: Completion::Respond(flits) };
            }
            PacketKind::SingleWrite | PacketKind::BlockWrite => {
                let expect = if req.kind() == PacketKind::SingleWrite { 1 } else { WORDS_PER_LINE };
                self.state = State::Busy {
                    until: now + overhead,
                    then: Completion::Grant { src, kind: req.kind(), addr, expect },
                };
            }
            PacketKind::Lock => {
                let granted = self.locks.try_lock(addr, NodeId::new(src as u16));
                if S::ACTIVE {
                    let (bank, src) = (self.node.index() as u16, src as u16);
                    sink.record(
                        now,
                        if granted {
                            TraceEvent::LockAcquired { bank, src, addr }
                        } else {
                            TraceEvent::LockContended { bank, src, addr }
                        },
                    );
                }
                let sub = if granted {
                    self.stats.locks_granted.inc();
                    SubKind::Ack
                } else {
                    self.stats.lock_nacks.inc();
                    SubKind::Nack
                };
                let resp = self.response(src, PacketKind::Lock, sub, 0, addr);
                self.state =
                    State::Busy { until: now + overhead, then: Completion::Respond(vec![resp]) };
            }
            PacketKind::Unlock => {
                let sub = match self.locks.unlock(addr, NodeId::new(src as u16)) {
                    Ok(()) => {
                        if S::ACTIVE {
                            sink.record(
                                now,
                                TraceEvent::LockReleased {
                                    bank: self.node.index() as u16,
                                    src: src as u16,
                                    addr,
                                },
                            );
                        }
                        self.stats.unlocks.inc();
                        SubKind::Ack
                    }
                    Err(_) => {
                        self.stats.unlock_errors.inc();
                        SubKind::Nack
                    }
                };
                let resp = self.response(src, PacketKind::Unlock, sub, 0, addr);
                self.state =
                    State::Busy { until: now + overhead, then: Completion::Respond(vec![resp]) };
            }
            PacketKind::Coherence => {
                let op = req.coh_op().expect("request FIFO only admits GetS/GetM/PutM");
                let line = line_of(addr);
                let src16 = src as u16;
                if S::ACTIVE {
                    sink.record(
                        now,
                        TraceEvent::CohHome {
                            bank: self.node.index() as u16,
                            src: src as u16,
                            op: op.code(),
                            addr: line,
                        },
                    );
                }
                match op {
                    CohOp::GetS => {
                        self.coh_stats.gets += 1;
                        match self.dir.get(&line).cloned() {
                            Some(DirEntry::Owned(owner)) if owner != src16 => {
                                // Someone may hold it dirty: downgrade
                                // them to S and collect their data.
                                self.coh_stats.fetches_sent += 1;
                                if S::ACTIVE {
                                    sink.record(
                                        now,
                                        TraceEvent::CohProbe {
                                            node: owner,
                                            op: CohOp::Fetch.code(),
                                            addr: line,
                                        },
                                    );
                                }
                                let probe = self.probe(owner, CohOp::Fetch, line);
                                let collect = CohCollect {
                                    line,
                                    req: src,
                                    want_m: false,
                                    prev_owner: Some(owner as u8),
                                    pending_acks: 0,
                                    need_owner: true,
                                    data: [None; WORDS_PER_LINE],
                                };
                                self.state = State::Busy {
                                    until: now + overhead,
                                    then: Completion::CohProbes { probes: vec![probe], collect },
                                };
                            }
                            dir => {
                                // Uncached, already shared, or the old
                                // owner re-fetching after a silent clean
                                // eviction: fill straight from memory.
                                let entry = match dir {
                                    Some(DirEntry::Shared(mut v)) => {
                                        if !v.contains(&src16) {
                                            v.push(src16);
                                        }
                                        DirEntry::Shared(v)
                                    }
                                    _ => DirEntry::Owned(src16),
                                };
                                let grant = if matches!(entry, DirEntry::Owned(_)) {
                                    CohOp::GrantE
                                } else {
                                    CohOp::GrantS
                                };
                                self.dir_insert(line, entry);
                                let (flits, lat) = self.build_fill(src, line, grant);
                                self.state = State::Busy {
                                    until: now + overhead + lat,
                                    then: Completion::CohFill(flits),
                                };
                            }
                        }
                    }
                    CohOp::GetM => {
                        self.coh_stats.getm += 1;
                        match self.dir.get(&line).cloned() {
                            Some(DirEntry::Owned(owner)) if owner != src16 => {
                                self.coh_stats.fetches_sent += 1;
                                if S::ACTIVE {
                                    sink.record(
                                        now,
                                        TraceEvent::CohProbe {
                                            node: owner,
                                            op: CohOp::FetchInv.code(),
                                            addr: line,
                                        },
                                    );
                                }
                                let probe = self.probe(owner, CohOp::FetchInv, line);
                                let collect = CohCollect {
                                    line,
                                    req: src,
                                    want_m: true,
                                    prev_owner: None,
                                    pending_acks: 0,
                                    need_owner: true,
                                    data: [None; WORDS_PER_LINE],
                                };
                                self.state = State::Busy {
                                    until: now + overhead,
                                    then: Completion::CohProbes { probes: vec![probe], collect },
                                };
                            }
                            Some(DirEntry::Shared(v)) if v.iter().any(|&s| s != src16) => {
                                let others: Vec<u16> =
                                    v.iter().copied().filter(|&s| s != src16).collect();
                                self.coh_stats.invalidations_sent += others.len() as u64;
                                let probes: Vec<Flit> = others
                                    .iter()
                                    .map(|&s| {
                                        if S::ACTIVE {
                                            sink.record(
                                                now,
                                                TraceEvent::CohProbe {
                                                    node: s,
                                                    op: CohOp::Inv.code(),
                                                    addr: line,
                                                },
                                            );
                                        }
                                        self.probe(s, CohOp::Inv, line)
                                    })
                                    .collect();
                                let collect = CohCollect {
                                    line,
                                    req: src,
                                    want_m: true,
                                    prev_owner: None,
                                    pending_acks: others.len(),
                                    need_owner: false,
                                    data: [None; WORDS_PER_LINE],
                                };
                                self.state = State::Busy {
                                    until: now + overhead,
                                    then: Completion::CohProbes { probes, collect },
                                };
                            }
                            _ => {
                                // Uncached, sole sharer upgrading, or the
                                // owner re-requesting: grant M directly.
                                self.dir_insert(line, DirEntry::Owned(src16));
                                let (flits, lat) = self.build_fill(src, line, CohOp::GrantM);
                                self.state = State::Busy {
                                    until: now + overhead + lat,
                                    then: Completion::CohFill(flits),
                                };
                            }
                        }
                    }
                    CohOp::PutM => {
                        self.coh_stats.putm += 1;
                        self.state = State::Busy {
                            until: now + overhead,
                            then: Completion::Grant {
                                src,
                                kind: PacketKind::Coherence,
                                addr: line,
                                expect: WORDS_PER_LINE,
                            },
                        };
                    }
                    _ => unreachable!("request FIFO only admits GetS/GetM/PutM"),
                }
            }
            PacketKind::Message => unreachable!("filtered in handle_incoming"),
        }
    }

    fn complete(&mut self, completion: Completion) {
        match completion {
            Completion::Respond(flits) => {
                self.staging.extend(flits);
                self.state = State::Idle;
            }
            Completion::Grant { src, kind, addr, expect } => {
                let seq = if kind == PacketKind::Coherence { CohOp::PutMGrant.code() } else { 0 };
                let grant = self.response(src, kind, SubKind::Ack, seq, addr);
                self.staging.push_back(grant);
                self.state =
                    State::AwaitData { src, kind, addr, words: vec![None; WORDS_PER_LINE], expect };
            }
            Completion::CohFill(flits) => {
                self.staging.extend(flits);
                self.state = State::CohAwaitUnblock;
            }
            Completion::CohProbes { probes, collect } => {
                self.staging.extend(probes);
                self.state = State::CohCollect(collect);
            }
        }
    }

    fn commit_write(
        &mut self,
        src: u8,
        kind: PacketKind,
        addr: Addr,
        words: &[Option<u32>],
        expect: usize,
    ) -> Cycle {
        match kind {
            PacketKind::SingleWrite => {
                self.stats.single_writes.inc();
                let value = words[0].expect("collected");
                self.mem_write_word(addr, value)
            }
            PacketKind::BlockWrite => {
                self.stats.block_writes.inc();
                let line = line_of(addr);
                let mut data = [0u32; WORDS_PER_LINE];
                for (i, slot) in words.iter().take(expect).enumerate() {
                    data[i] = slot.expect("collected");
                }
                self.mem_write_line(line, data)
            }
            PacketKind::Coherence => {
                // PutM writeback. Commit only if the directory still says
                // `src` owns the line: a racing GetM serialized first
                // already harvested this data via FetchInv, making this
                // stream stale — discard it (the PutMAck still flows, so
                // the evicting bridge completes normally).
                let line = line_of(addr);
                if self.dir.get(&line) == Some(&DirEntry::Owned(src as u16)) {
                    self.dir.remove(&line);
                    let mut data = [0u32; WORDS_PER_LINE];
                    for (i, slot) in words.iter().take(expect).enumerate() {
                        data[i] = slot.expect("collected");
                    }
                    self.mem_write_line(line, data)
                } else {
                    0
                }
            }
            _ => unreachable!("only writes reach commit_write"),
        }
    }

    fn response(&self, src: u8, kind: PacketKind, sub: SubKind, seq: u8, data: u32) -> Flit {
        let dest = self.topo.coord_of(NodeId::new(src as u16));
        Flit::new(dest, kind, sub, seq, 0, self.node.index() as u8, data)
    }

    // ---- MESI directory helpers ----

    fn dir_insert(&mut self, line: Addr, entry: DirEntry) {
        self.dir.insert(line, entry);
        let occ = self.dir.len() as u64;
        if occ > self.coh_stats.directory_lines_peak {
            self.coh_stats.directory_lines_peak = occ;
        }
    }

    /// Build a probe flit addressed at the L1 of `dest`.
    fn probe(&self, dest: u16, op: CohOp, line: Addr) -> Flit {
        Flit::coherence(
            self.topo.coord_of(NodeId::new(dest)),
            SubKind::Request,
            op,
            self.node.index() as u8,
            line,
        )
    }

    /// Read the line and build the fill packet: 4 sequenced data flits
    /// plus the grant ack carrying the MESI state to install.
    fn build_fill(&mut self, src: u8, line: Addr, grant: CohOp) -> (Vec<Flit>, Cycle) {
        let (data, lat) = self.mem_read_line(line);
        let dest = self.topo.coord_of(NodeId::new(src as u16));
        let me = self.node.index() as u8;
        let mut flits: Vec<Flit> = data
            .iter()
            .enumerate()
            .map(|(i, w)| {
                Flit::new(
                    dest,
                    PacketKind::Coherence,
                    SubKind::Data,
                    i as u8,
                    burst_code(WORDS_PER_LINE),
                    me,
                    *w,
                )
            })
            .collect();
        flits.push(Flit::coherence(dest, SubKind::Ack, grant, me, line));
        (flits, lat)
    }

    // ---- memory hierarchy (MPMMU cache in front of DDR) ----

    fn allocate(&mut self, line: Addr) -> Cycle {
        let mut lat = self.cfg.ddr.read_latency(WORDS_PER_LINE);
        if let Some(victim) = self.cache.evict_for(line) {
            self.store.write_line(victim.line, victim.data);
            lat += self.cfg.ddr.write_latency(WORDS_PER_LINE);
        }
        let data = self.store.read_line(line);
        self.cache.fill_line(line, data);
        lat
    }

    fn mem_read_line(&mut self, line: Addr) -> ([u32; WORDS_PER_LINE], Cycle) {
        let mut lat = self.cfg.cache_hit_latency;
        if !self.cache.probe(line) {
            lat += self.allocate(line);
        }
        let mut data = [0u32; WORDS_PER_LINE];
        for (i, word) in data.iter_mut().enumerate() {
            *word =
                self.cache.load_word(line + (i as Addr) * 4).expect("line resident after allocate");
        }
        (data, lat)
    }

    fn mem_read_word(&mut self, addr: Addr) -> (u32, Cycle) {
        let mut lat = self.cfg.cache_hit_latency;
        if !self.cache.probe(addr) {
            lat += self.allocate(line_of(addr));
        }
        let value = self.cache.load_word(addr).expect("resident after allocate");
        (value, lat)
    }

    fn mem_write_word(&mut self, addr: Addr, value: u32) -> Cycle {
        let mut lat = self.cfg.cache_hit_latency;
        match self.cache.store_word(addr, value) {
            StoreOutcome::Absorbed => {}
            StoreOutcome::WriteThrough => {
                self.store.write_word(addr, value);
                lat += self.cfg.ddr.write_latency(1);
            }
            StoreOutcome::NeedsAllocate => {
                lat += self.allocate(line_of(addr));
                match self.cache.store_word(addr, value) {
                    StoreOutcome::Absorbed => {}
                    other => unreachable!("retry after allocate: {other:?}"),
                }
            }
        }
        lat
    }

    fn mem_write_line(&mut self, line: Addr, data: [u32; WORDS_PER_LINE]) -> Cycle {
        let mut lat = self.cfg.cache_hit_latency;
        if !self.cache.probe(line) {
            lat += self.allocate(line);
        }
        for (i, word) in data.iter().enumerate() {
            match self.cache.store_word(line + (i as Addr) * 4, *word) {
                StoreOutcome::Absorbed => {}
                StoreOutcome::WriteThrough => {
                    self.store.write_word(line + (i as Addr) * 4, *word);
                }
                StoreOutcome::NeedsAllocate => unreachable!("line resident"),
            }
        }
        lat
    }
}

// Compile-time pin of the tiled-engine ownership contract: a bank must
// be movable to its owning worker thread (`Send`). `Sync` is neither
// needed nor wanted — shared access would hide a tiling bug.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Mpmmu>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(num_procs: usize) -> Mpmmu {
        let topo = Topology::paper_4x4();
        Mpmmu::new(topo, NodeId::new(0), MpmmuConfig::new(num_procs, 64 * 1024))
    }

    fn req(kind: PacketKind, src: u8, addr: u32) -> Flit {
        // Requests travel toward the MPMMU at (0,0).
        Flit::request(medea_noc::coord::Coord::new(0, 0), kind, src, addr)
    }

    fn data_flit(src: u8, seq: u8, value: u32) -> Flit {
        Flit::new(
            medea_noc::coord::Coord::new(0, 0),
            PacketKind::BlockWrite,
            SubKind::Data,
            seq,
            burst_code(4),
            src,
            value,
        )
    }

    fn run_until_response(m: &mut Mpmmu, start: Cycle, limit: Cycle) -> (Flit, Cycle) {
        for now in start..start + limit {
            m.tick(now);
            if let Some(f) = m.pop_outgoing() {
                return (f, now);
            }
        }
        panic!("no response within {limit} cycles");
    }

    #[test]
    fn single_read_roundtrip() {
        let mut m = mk(4);
        m.debug_store().write_word(0x100, 77);
        m.handle_incoming(req(PacketKind::SingleRead, 5, 0x100)).unwrap();
        let (resp, when) = run_until_response(&mut m, 0, 100);
        assert_eq!(resp.kind(), PacketKind::SingleRead);
        assert_eq!(resp.sub(), SubKind::Data);
        assert_eq!(resp.payload(), 77);
        // Response goes back to node 5 = (1,1).
        assert_eq!(resp.dest(), medea_noc::coord::Coord::new(1, 1));
        // Cold miss: must include DDR latency.
        assert!(when >= 24, "response at {when} ignored DDR latency");
        assert_eq!(m.stats().single_reads.get(), 1);
    }

    #[test]
    fn cached_read_is_faster() {
        let mut m = mk(4);
        m.debug_store().write_word(0x100, 1);
        m.handle_incoming(req(PacketKind::SingleRead, 5, 0x100)).unwrap();
        let (_, cold) = run_until_response(&mut m, 0, 200);
        let start = cold + 1;
        m.handle_incoming(req(PacketKind::SingleRead, 5, 0x100)).unwrap();
        let (_, warm_abs) = run_until_response(&mut m, start, 200);
        let warm = warm_abs - start;
        assert!(warm < cold, "warm {warm} !< cold {cold}");
    }

    #[test]
    fn block_read_returns_four_sequenced_flits() {
        let mut m = mk(4);
        m.debug_store().write_line(0x40, [10, 20, 30, 40]);
        m.handle_incoming(req(PacketKind::BlockRead, 3, 0x44)).unwrap();
        let mut flits = Vec::new();
        for now in 0..200 {
            m.tick(now);
            while let Some(f) = m.pop_outgoing() {
                flits.push(f);
            }
            if flits.len() == 4 {
                break;
            }
        }
        assert_eq!(flits.len(), 4);
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(f.seq() as usize, i);
            assert_eq!(f.payload(), (10 * (i + 1)) as u32);
            assert_eq!(f.burst_flits(), 4);
        }
    }

    #[test]
    fn write_protocol_grant_data_ack() {
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::SingleWrite, 2, 0x200)).unwrap();
        let (grant, when) = run_until_response(&mut m, 0, 100);
        assert_eq!(grant.sub(), SubKind::Ack);
        assert_eq!(grant.seq(), 0, "grant carries seq 0");
        // Send the data flit.
        let mut d = data_flit(2, 0, 4242);
        d = Flit::new(d.dest(), PacketKind::SingleWrite, SubKind::Data, 0, 0, 2, 4242);
        m.handle_incoming(d).unwrap();
        let (ack, _) = run_until_response(&mut m, when + 1, 200);
        assert_eq!(ack.sub(), SubKind::Ack);
        assert_eq!(ack.seq(), 1, "final ack carries seq 1");
        assert_eq!(m.debug_read_word(0x200), 4242);
        assert_eq!(m.stats().single_writes.get(), 1);
    }

    #[test]
    fn block_write_out_of_order_data() {
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::BlockWrite, 2, 0x80)).unwrap();
        let (_grant, when) = run_until_response(&mut m, 0, 100);
        // Data arrives out of order — sequence numbers sort it out.
        for seq in [2u8, 0, 3, 1] {
            m.handle_incoming(data_flit(2, seq, 100 + seq as u32)).unwrap();
        }
        let (ack, _) = run_until_response(&mut m, when + 1, 300);
        assert_eq!(ack.sub(), SubKind::Ack);
        assert_eq!(m.debug_read_word(0x80), 100);
        assert_eq!(m.debug_read_word(0x84), 101);
        assert_eq!(m.debug_read_word(0x88), 102);
        assert_eq!(m.debug_read_word(0x8C), 103);
    }

    #[test]
    fn lock_grant_nack_unlock() {
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::Lock, 1, 0x300)).unwrap();
        let (r1, t1) = run_until_response(&mut m, 0, 50);
        assert_eq!(r1.sub(), SubKind::Ack);
        m.handle_incoming(req(PacketKind::Lock, 2, 0x300)).unwrap();
        let (r2, t2) = run_until_response(&mut m, t1 + 1, 50);
        assert_eq!(r2.sub(), SubKind::Nack);
        m.handle_incoming(req(PacketKind::Unlock, 1, 0x300)).unwrap();
        let (r3, t3) = run_until_response(&mut m, t2 + 1, 50);
        assert_eq!(r3.sub(), SubKind::Ack);
        m.handle_incoming(req(PacketKind::Lock, 2, 0x300)).unwrap();
        let (r4, _) = run_until_response(&mut m, t3 + 1, 50);
        assert_eq!(r4.sub(), SubKind::Ack);
        assert_eq!(m.stats().lock_nacks.get(), 1);
        assert_eq!(m.stats().locks_granted.get(), 2);
    }

    #[test]
    fn unlock_violation_nacked() {
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::Unlock, 1, 0x300)).unwrap();
        let (r, _) = run_until_response(&mut m, 0, 50);
        assert_eq!(r.sub(), SubKind::Nack);
        assert_eq!(m.stats().unlock_errors.get(), 1);
    }

    #[test]
    fn requests_serialized_in_order() {
        let mut m = mk(4);
        m.debug_store().write_word(0x10, 1);
        m.debug_store().write_word(0x20, 2);
        m.handle_incoming(req(PacketKind::SingleRead, 1, 0x10)).unwrap();
        m.handle_incoming(req(PacketKind::SingleRead, 2, 0x20)).unwrap();
        let (first, t1) = run_until_response(&mut m, 0, 200);
        let (second, _) = run_until_response(&mut m, t1 + 1, 200);
        assert_eq!(first.payload(), 1);
        assert_eq!(second.payload(), 2);
    }

    #[test]
    fn req_fifo_backpressure() {
        let mut m = mk(2); // request queue depth 2
        assert!(m.handle_incoming(req(PacketKind::SingleRead, 1, 0x0)).is_ok());
        assert!(m.handle_incoming(req(PacketKind::SingleRead, 2, 0x0)).is_ok());
        assert!(m.handle_incoming(req(PacketKind::SingleRead, 3, 0x0)).is_err());
    }

    #[test]
    fn message_flit_dropped() {
        let mut m = mk(4);
        let msg = Flit::message(medea_noc::coord::Coord::new(0, 0), 1, 0, 0, 5);
        assert!(m.handle_incoming(msg).is_ok());
        assert_eq!(m.stats().protocol_drops.get(), 1);
        assert!(m.is_idle());
    }

    #[test]
    fn idle_detection() {
        let mut m = mk(4);
        assert!(m.is_idle());
        m.handle_incoming(req(PacketKind::SingleRead, 1, 0x0)).unwrap();
        assert!(!m.is_idle());
        let _ = run_until_response(&mut m, 0, 200);
        m.tick(1000);
        assert!(m.is_idle());
    }

    #[test]
    fn return_outgoing_preserves_order() {
        let mut m = mk(4);
        m.debug_store().write_line(0x40, [9, 8, 7, 6]);
        m.handle_incoming(req(PacketKind::BlockRead, 3, 0x40)).unwrap();
        let mut first = None;
        for now in 0..200 {
            m.tick(now);
            if let Some(f) = m.pop_outgoing() {
                first = Some(f);
                break;
            }
        }
        let f = first.unwrap();
        m.return_outgoing(f);
        let again = m.pop_outgoing().unwrap();
        assert_eq!(again, f, "returned flit must come out first again");
    }

    #[test]
    fn injected_drop_swallows_read_responses_only() {
        use medea_fault::{FaultConfig, ScheduledInjector, PPM};
        let mut inj = ScheduledInjector::new(FaultConfig {
            bank_drop_ppm: PPM as u32, // every read response lost
            ..FaultConfig::default()
        });
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::SingleRead, 2, 0x40)).unwrap();
        for now in 0..400 {
            m.tick_faulted(now, &mut medea_trace::NullSink, &mut inj);
            assert!(m.pop_outgoing().is_none(), "dropped response escaped at {now}");
        }
        assert!(inj.stats().bank_drops > 0);
        // A lock ack is control traffic: never dropped.
        m.handle_incoming(req(PacketKind::Lock, 2, 0x40)).unwrap();
        let mut granted = false;
        for now in 400..500 {
            m.tick_faulted(now, &mut medea_trace::NullSink, &mut inj);
            if let Some(f) = m.pop_outgoing() {
                assert_eq!(f.kind(), PacketKind::Lock);
                assert_eq!(f.sub(), SubKind::Ack);
                granted = true;
                break;
            }
        }
        assert!(granted, "lock traffic must survive a drop-everything bank");
    }

    // ---- MESI directory flows ----

    fn coh_req(op: CohOp, src: u8, addr: u32) -> Flit {
        Flit::coherence(medea_noc::coord::Coord::new(0, 0), SubKind::Request, op, src, addr)
    }

    fn coh_data(src: u8, seq: u8, value: u32) -> Flit {
        Flit::new(
            medea_noc::coord::Coord::new(0, 0),
            PacketKind::Coherence,
            SubKind::Data,
            seq,
            burst_code(4),
            src,
            value,
        )
    }

    fn coh_ack(op: CohOp, src: u8, addr: u32) -> Flit {
        Flit::coherence(medea_noc::coord::Coord::new(0, 0), SubKind::Ack, op, src, addr)
    }

    fn collect_flits(m: &mut Mpmmu, start: Cycle, limit: Cycle, n: usize) -> (Vec<Flit>, Cycle) {
        let mut v = Vec::new();
        for now in start..start + limit {
            m.tick(now);
            while let Some(f) = m.pop_outgoing() {
                v.push(f);
            }
            if v.len() >= n {
                return (v, now);
            }
        }
        panic!("only {} of {n} flits within {limit} cycles", v.len());
    }

    #[test]
    fn coh_gets_cold_fill_grants_exclusive_then_unblock_releases() {
        let mut m = mk(8);
        m.debug_store().write_line(0x40, [1, 2, 3, 4]);
        m.handle_incoming(coh_req(CohOp::GetS, 5, 0x40)).unwrap();
        let (flits, when) = collect_flits(&mut m, 0, 200, 5);
        assert_eq!(flits.len(), 5, "4 data + grant");
        for (i, f) in flits[..4].iter().enumerate() {
            assert_eq!(f.kind(), PacketKind::Coherence);
            assert_eq!(f.sub(), SubKind::Data);
            assert_eq!(f.seq() as usize, i);
            assert_eq!(f.payload(), (i + 1) as u32);
        }
        assert_eq!(flits[4].coh_op(), Some(CohOp::GrantE), "sole copy is granted E");
        // Home is blocked until the requester unblocks it.
        m.tick(when + 1);
        assert!(!m.is_idle(), "home must await Unblock");
        m.handle_incoming(coh_req(CohOp::Unblock, 5, 0x40)).unwrap();
        m.tick(when + 2);
        assert!(m.is_idle());
        assert_eq!(m.coherence_stats().gets, 1);
        assert_eq!(m.coherence_stats().directory_lines_peak, 1);
    }

    #[test]
    fn coh_second_reader_downgrades_owner_and_grants_shared() {
        let mut m = mk(8);
        m.debug_store().write_line(0x40, [9, 9, 9, 9]);
        m.handle_incoming(coh_req(CohOp::GetS, 5, 0x40)).unwrap();
        let (_, t0) = collect_flits(&mut m, 0, 200, 5);
        m.handle_incoming(coh_req(CohOp::Unblock, 5, 0x40)).unwrap();
        // Second reader: home must Fetch-probe the owner (node 5).
        m.handle_incoming(coh_req(CohOp::GetS, 3, 0x40)).unwrap();
        let (probes, t1) = collect_flits(&mut m, t0 + 1, 200, 1);
        assert_eq!(probes[0].coh_op(), Some(CohOp::Fetch));
        assert_eq!(probes[0].dest(), m.topo.coord_of(NodeId::new(5)));
        assert_eq!(m.coherence_stats().fetches_sent, 1);
        // Owner answers clean: line was only E, memory is current.
        m.handle_incoming(coh_ack(CohOp::CleanAck, 5, 0x40)).unwrap();
        let (fill, _) = collect_flits(&mut m, t1 + 1, 200, 5);
        assert_eq!(fill[4].coh_op(), Some(CohOp::GrantS), "downgraded line is granted S");
        assert_eq!(fill[0].payload(), 9);
        m.handle_incoming(coh_req(CohOp::Unblock, 3, 0x40)).unwrap();
        m.tick(10_000);
        assert!(m.is_idle());
    }

    #[test]
    fn coh_getm_invalidates_all_other_sharers() {
        let mut m = mk(8);
        // Build Shared{5, 3}: GetS by 5, downgrade via GetS by 3.
        m.handle_incoming(coh_req(CohOp::GetS, 5, 0x40)).unwrap();
        let (_, t0) = collect_flits(&mut m, 0, 200, 5);
        m.handle_incoming(coh_req(CohOp::Unblock, 5, 0x40)).unwrap();
        m.handle_incoming(coh_req(CohOp::GetS, 3, 0x40)).unwrap();
        let (_, t1) = collect_flits(&mut m, t0 + 1, 200, 1);
        m.handle_incoming(coh_ack(CohOp::CleanAck, 5, 0x40)).unwrap();
        let (_, t2) = collect_flits(&mut m, t1 + 1, 200, 5);
        m.handle_incoming(coh_req(CohOp::Unblock, 3, 0x40)).unwrap();
        // Writer 6 arrives: both sharers must be invalidated.
        m.handle_incoming(coh_req(CohOp::GetM, 6, 0x40)).unwrap();
        let (invs, t3) = collect_flits(&mut m, t2 + 1, 200, 2);
        assert!(invs.iter().all(|f| f.coh_op() == Some(CohOp::Inv)));
        let dests: Vec<_> = invs.iter().map(Flit::dest).collect();
        assert_eq!(
            dests,
            vec![m.topo.coord_of(NodeId::new(5)), m.topo.coord_of(NodeId::new(3))],
            "probe order follows sharer insertion order"
        );
        assert_eq!(m.coherence_stats().invalidations_sent, 2);
        // Fill is withheld until every ack lands.
        m.handle_incoming(coh_ack(CohOp::InvAck, 5, 0x40)).unwrap();
        for now in t3 + 1..t3 + 20 {
            m.tick(now);
            assert!(m.pop_outgoing().is_none(), "fill escaped before all InvAcks");
        }
        m.handle_incoming(coh_ack(CohOp::InvAck, 3, 0x40)).unwrap();
        let (fill, _) = collect_flits(&mut m, t3 + 20, 200, 5);
        assert_eq!(fill[4].coh_op(), Some(CohOp::GrantM));
        m.handle_incoming(coh_req(CohOp::Unblock, 6, 0x40)).unwrap();
        m.tick(20_000);
        assert!(m.is_idle());
    }

    #[test]
    fn coh_putm_commits_writeback_and_frees_directory() {
        let mut m = mk(8);
        m.handle_incoming(coh_req(CohOp::GetM, 5, 0x80)).unwrap();
        let (fill, t0) = collect_flits(&mut m, 0, 200, 5);
        assert_eq!(fill[4].coh_op(), Some(CohOp::GrantM));
        m.handle_incoming(coh_req(CohOp::Unblock, 5, 0x80)).unwrap();
        // Owner evicts: PutM handshake (grant → data → ack).
        m.handle_incoming(coh_req(CohOp::PutM, 5, 0x80)).unwrap();
        let (grant, t1) = collect_flits(&mut m, t0 + 1, 200, 1);
        assert_eq!(grant[0].coh_op(), Some(CohOp::PutMGrant));
        for seq in [1u8, 3, 0, 2] {
            m.handle_incoming(coh_data(5, seq, 0xD0 + seq as u32)).unwrap();
        }
        let (ack, _) = collect_flits(&mut m, t1 + 1, 300, 1);
        assert_eq!(ack[0].coh_op(), Some(CohOp::PutMAck));
        assert_eq!(m.debug_read_word(0x80), 0xD0);
        assert_eq!(m.debug_read_word(0x8C), 0xD3);
        assert_eq!(m.coherence_stats().putm, 1);
        // Directory entry is gone: the next reader gets E again.
        m.handle_incoming(coh_req(CohOp::GetS, 3, 0x80)).unwrap();
        let (refill, _) = collect_flits(&mut m, 10_000, 200, 5);
        assert_eq!(refill[4].coh_op(), Some(CohOp::GrantE));
        assert_eq!(refill[0].payload(), 0xD0);
    }

    #[test]
    fn coh_stale_putm_after_fetchinv_is_discarded() {
        let mut m = mk(8);
        m.handle_incoming(coh_req(CohOp::GetM, 5, 0x80)).unwrap();
        let (_, t0) = collect_flits(&mut m, 0, 200, 5);
        m.handle_incoming(coh_req(CohOp::Unblock, 5, 0x80)).unwrap();
        // A racing writer is serialized before the owner's PutM: the
        // home FetchInv-probes node 5, whose responder answers from its
        // in-flight writeback data.
        m.handle_incoming(coh_req(CohOp::GetM, 6, 0x80)).unwrap();
        let (probe, t1) = collect_flits(&mut m, t0 + 1, 200, 1);
        assert_eq!(probe[0].coh_op(), Some(CohOp::FetchInv));
        for seq in 0..4u8 {
            m.handle_incoming(coh_data(5, seq, 0xAA0 + seq as u32)).unwrap();
        }
        let (fill, t2) = collect_flits(&mut m, t1 + 1, 300, 5);
        assert_eq!(fill[4].coh_op(), Some(CohOp::GrantM));
        assert_eq!(fill[0].payload(), 0xAA0, "fill carries the harvested dirty data");
        m.handle_incoming(coh_req(CohOp::Unblock, 6, 0x80)).unwrap();
        // Node 5's original PutM finally arrives: granted and acked, but
        // its stale data must not clobber node 6's ownership.
        m.handle_incoming(coh_req(CohOp::PutM, 5, 0x80)).unwrap();
        let (grant, t3) = collect_flits(&mut m, t2 + 1, 200, 1);
        assert_eq!(grant[0].coh_op(), Some(CohOp::PutMGrant));
        for seq in 0..4u8 {
            m.handle_incoming(coh_data(5, seq, 0xDEAD)).unwrap();
        }
        let (ack, _) = collect_flits(&mut m, t3 + 1, 300, 1);
        assert_eq!(ack[0].coh_op(), Some(CohOp::PutMAck), "evictor still completes");
        assert_eq!(m.debug_read_word(0x80), 0xAA0, "stale PutM data discarded");
        assert_eq!(m.dir.get(&0x80), Some(&DirEntry::Owned(6)), "node 6 still owns the line");
    }

    #[test]
    fn injected_delay_slows_service() {
        use medea_fault::{FaultConfig, ScheduledInjector, PPM};
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::SingleRead, 2, 0x40)).unwrap();
        let (_, base) = run_until_response(&mut m, 0, 400);

        let mut inj = ScheduledInjector::new(FaultConfig {
            bank_delay_ppm: PPM as u32,
            bank_delay_cycles: 64,
            ..FaultConfig::default()
        });
        let mut slow = mk(4);
        slow.handle_incoming(req(PacketKind::SingleRead, 2, 0x40)).unwrap();
        let mut arrived = None;
        for now in 0..1000 {
            slow.tick_faulted(now, &mut medea_trace::NullSink, &mut inj);
            if slow.pop_outgoing().is_some() {
                arrived = Some(now);
                break;
            }
        }
        let slow_at = arrived.expect("delayed, not lost");
        assert!(slow_at >= base + 64, "delay must defer the response: base {base}, slow {slow_at}");
        assert_eq!(inj.stats().bank_delays, 1);
        assert_eq!(inj.stats().bank_delay_cycles, 64);
    }
}
