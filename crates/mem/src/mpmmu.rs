//! The Multiprocessor Memory Management Unit (§II-C, Fig. 4).
//!
//! A pure NoC slave serializing all shared-memory transactions:
//!
//! * **Read** (single/block): request token → MPMMU looks the data up in
//!   its local cache (DDR on miss) → data flit(s) through the outgoing
//!   FIFO. Block-read responses carry sequence numbers 0..3 so the
//!   requester's reorder buffer can handle out-of-order delivery.
//! * **Write** (single/block): request token → **grant** ack → requester
//!   streams data flits into the Pif-Data FIFO → MPMMU commits to memory →
//!   **final** ack. The two-step handshake is the paper's implicit
//!   flow-control scheme that keeps MPMMU buffering minimal.
//! * **Lock/Unlock**: word-granularity lock table; busy locks are Nack'd
//!   and the requesting bridge retries (documented design choice).
//!
//! Source identification: the application-level `src-id` field equals the
//! linear node index of the requester (the field is sized per topology to
//! hold a full node index, up to 256 nodes on a 16×16 torus), which is
//! how responses find their way back.
//!
//! # Tiled execution
//!
//! Under the tiled parallel cycle engine each MPMMU bank is owned
//! exclusively by the tile that owns its node: a bank only ever observes
//! flits ejected from its own router and only injects into its own
//! router, so bank state needs no synchronization — the per-cycle
//! barrier and the fixed tile-order merge of boundary latches are the
//! only cross-tile channels. `Mpmmu` is therefore deliberately
//! `Send`-but-not-`Sync` (plain `Cell`-based counters, no atomics): a
//! bank moves to its owning worker thread and stays there for the whole
//! run (asserted below).

use crate::backing::BackingStore;
use crate::ddr::DdrModel;
use crate::lock::LockTable;
use medea_cache::{
    line_of, Addr, CacheConfig, CachePolicy, SetAssocCache, StoreOutcome, WORDS_PER_LINE,
};
use medea_fault::{FaultInjector, NullInjector};
use medea_noc::coord::Topology;
use medea_noc::flit::{burst_code, Flit, PacketKind, SubKind};
use medea_sim::fifo::Fifo;
use medea_sim::ids::NodeId;
use medea_sim::stats::Counter;
use medea_sim::Cycle;
use medea_trace::{NullSink, TraceEvent, TraceSink};
use std::collections::VecDeque;

/// MPMMU configuration.
#[derive(Debug, Clone, Copy)]
pub struct MpmmuConfig {
    /// Number of processors in the system: the depth of the
    /// Pif-Request/Control queue ("the depth of this queue is as large as
    /// the number of processors", §II-C).
    pub num_procs: usize,
    /// Depth of the Pif-Data queue.
    pub data_fifo_depth: usize,
    /// Depth of the outgoing FIFO.
    pub out_fifo_depth: usize,
    /// Fixed per-transaction processing cost of the "special processor".
    pub service_overhead: Cycle,
    /// Latency of an MPMMU-cache hit.
    pub cache_hit_latency: Cycle,
    /// Geometry of the MPMMU-local cache.
    pub cache: CacheConfig,
    /// Size of the DDR backing store in bytes.
    pub mem_bytes: usize,
    /// DDR timing.
    pub ddr: DdrModel,
}

impl MpmmuConfig {
    /// Paper-flavoured defaults for a system with `num_procs` processors
    /// and `mem_bytes` of DDR.
    pub fn new(num_procs: usize, mem_bytes: usize) -> Self {
        MpmmuConfig {
            num_procs: num_procs.max(1),
            data_fifo_depth: 16,
            out_fifo_depth: 16,
            service_overhead: 4,
            cache_hit_latency: 2,
            cache: CacheConfig::new(16 * 1024, CachePolicy::WriteBack)
                .expect("16 kB WB is a valid geometry"),
            mem_bytes,
            ddr: DdrModel::default(),
        }
    }
}

/// Transaction counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MpmmuStats {
    /// Single-read transactions served.
    pub single_reads: Counter,
    /// Block-read transactions served.
    pub block_reads: Counter,
    /// Single-write transactions committed.
    pub single_writes: Counter,
    /// Block-write transactions committed.
    pub block_writes: Counter,
    /// Lock requests granted.
    pub locks_granted: Counter,
    /// Lock requests Nack'd (busy).
    pub lock_nacks: Counter,
    /// Unlocks performed.
    pub unlocks: Counter,
    /// Unlock protocol violations (Nack'd).
    pub unlock_errors: Counter,
    /// Cycles spent busy (serving or awaiting write data).
    pub busy_cycles: Counter,
    /// Flits dropped because they were not valid MPMMU traffic.
    pub protocol_drops: Counter,
}

impl MpmmuStats {
    /// Accumulate another bank's counters into this one (the per-bank →
    /// aggregate reduction of a banked system's run report).
    pub fn merge(&mut self, other: &MpmmuStats) {
        self.single_reads.add(other.single_reads.get());
        self.block_reads.add(other.block_reads.get());
        self.single_writes.add(other.single_writes.get());
        self.block_writes.add(other.block_writes.get());
        self.locks_granted.add(other.locks_granted.get());
        self.lock_nacks.add(other.lock_nacks.get());
        self.unlocks.add(other.unlocks.get());
        self.unlock_errors.add(other.unlock_errors.get());
        self.busy_cycles.add(other.busy_cycles.get());
        self.protocol_drops.add(other.protocol_drops.get());
    }
}

#[derive(Debug, Clone)]
enum State {
    Idle,
    /// Serving: responses emitted when `until` is reached.
    Busy {
        until: Cycle,
        then: Completion,
    },
    /// Write in flight: grant sent, awaiting `expect` data flits from
    /// `src`.
    AwaitData {
        src: u8,
        kind: PacketKind,
        addr: Addr,
        words: Vec<Option<u32>>,
        expect: usize,
    },
}

#[derive(Debug, Clone)]
enum Completion {
    /// Emit these flits, then go idle.
    Respond(Vec<Flit>),
    /// Emit a grant for a write and start collecting data.
    Grant { src: u8, kind: PacketKind, addr: Addr, expect: usize },
}

/// The MPMMU node model.
#[derive(Debug, Clone)]
pub struct Mpmmu {
    topo: Topology,
    node: NodeId,
    cfg: MpmmuConfig,
    req_fifo: Fifo<Flit>,
    data_fifo: Fifo<Flit>,
    staging: VecDeque<Flit>,
    out_fifo: Fifo<Flit>,
    cache: SetAssocCache,
    store: BackingStore,
    locks: LockTable,
    state: State,
    stats: MpmmuStats,
}

impl Mpmmu {
    /// Build the MPMMU at `node` of `topo`.
    pub fn new(topo: Topology, node: NodeId, cfg: MpmmuConfig) -> Self {
        Mpmmu {
            topo,
            node,
            req_fifo: Fifo::new("mpmmu-req", cfg.num_procs),
            data_fifo: Fifo::new("mpmmu-data", cfg.data_fifo_depth),
            staging: VecDeque::new(),
            out_fifo: Fifo::new("mpmmu-out", cfg.out_fifo_depth),
            cache: SetAssocCache::new(cfg.cache),
            store: BackingStore::new(cfg.mem_bytes),
            locks: LockTable::new(),
            state: State::Idle,
            cfg,
            stats: MpmmuStats::default(),
        }
    }

    /// The node this MPMMU occupies.
    pub const fn node(&self) -> NodeId {
        self.node
    }

    /// Transaction statistics.
    pub const fn stats(&self) -> &MpmmuStats {
        &self.stats
    }

    /// MPMMU-local cache statistics.
    pub fn cache_stats(&self) -> &medea_cache::CacheStats {
        self.cache.stats()
    }

    /// Direct (zero-time) access to the architectural memory content.
    /// Used for program loading before reset and for result checking after
    /// the run — never during simulation.
    pub fn debug_store(&mut self) -> &mut BackingStore {
        &mut self.store
    }

    /// Read a word's architecturally current value, looking through the
    /// MPMMU cache first (the cache may hold lines newer than DDR).
    pub fn debug_read_word(&mut self, addr: Addr) -> u32 {
        if self.cache.probe(addr) {
            self.cache.load_word(addr).expect("probed resident")
        } else {
            self.store.read_word(addr)
        }
    }

    /// Deliver a flit ejected from the NoC at the MPMMU node.
    ///
    /// # Errors
    ///
    /// Returns the flit back if its target FIFO is full; the caller should
    /// retry next cycle (the node interface holds it).
    pub fn handle_incoming(&mut self, flit: Flit) -> Result<(), Flit> {
        if !flit.kind().is_shared_memory() {
            // Message traffic addressed at the MPMMU is a software bug;
            // drop it loudly in stats.
            self.stats.protocol_drops.inc();
            return Ok(());
        }
        match flit.sub() {
            SubKind::Request => self.req_fifo.push(flit).map_err(|e| e.0),
            SubKind::Data => self.data_fifo.push(flit).map_err(|e| e.0),
            SubKind::Ack | SubKind::Nack => {
                self.stats.protocol_drops.inc();
                Ok(())
            }
        }
    }

    /// Pop the next response flit to inject into the NoC.
    pub fn pop_outgoing(&mut self) -> Option<Flit> {
        self.out_fifo.pop()
    }

    /// Put back a response flit the router refused this cycle.
    pub fn return_outgoing(&mut self, flit: Flit) {
        // Front of the queue: ordering must be preserved.
        let mut rest: Vec<Flit> = std::iter::once(flit).chain(self.drain_out()).collect();
        for f in rest.drain(..) {
            self.out_fifo.push(f).expect("refill cannot exceed prior occupancy + 1");
        }
    }

    fn drain_out(&mut self) -> Vec<Flit> {
        let mut v = Vec::with_capacity(self.out_fifo.len());
        while let Some(f) = self.out_fifo.pop() {
            v.push(f);
        }
        v
    }

    /// Whether the MPMMU has no work at all (fast-forward predicate).
    pub fn is_idle(&self) -> bool {
        matches!(self.state, State::Idle)
            && self.req_fifo.is_empty()
            && self.data_fifo.is_empty()
            && self.staging.is_empty()
            && self.out_fifo.is_empty()
    }

    /// The cycle at which the current service completes, if busy.
    pub fn busy_until(&self) -> Option<Cycle> {
        match &self.state {
            State::Busy { until, .. } => Some(*until),
            _ => None,
        }
    }

    /// Advance one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_traced(now, &mut NullSink);
    }

    /// [`tick`](Mpmmu::tick) with per-bank transaction and lock events
    /// reported to `sink` (emitted at request dispatch). With an inactive
    /// sink every emission site constant-folds away.
    pub fn tick_traced<S: TraceSink>(&mut self, now: Cycle, sink: &mut S) {
        self.tick_faulted(now, sink, &mut NullInjector);
    }

    /// [`tick_traced`](Mpmmu::tick_traced) with bank faults drawn from
    /// `injector`: read-response **drops** (SingleRead/BlockRead `Data`
    /// flits discarded at the staging → out-FIFO boundary — write acks,
    /// grants and lock traffic are exempt, mirroring the bridge's
    /// reads-only retry) and service **delays** (extra cycles folded into
    /// the dispatch overhead). The drop decision is rolled per (bank,
    /// cycle): response flits staged in the same cycle share its fate, so
    /// a lost block read loses the whole line — the coarsest loss the
    /// bridge's timeout must recover from. With [`NullInjector`] every
    /// site constant-folds away and this is exactly `tick_traced`.
    pub fn tick_faulted<S: TraceSink, I: FaultInjector>(
        &mut self,
        now: Cycle,
        sink: &mut S,
        injector: &mut I,
    ) {
        // Move staged responses into the bounded outgoing FIFO.
        while let Some(&f) = self.staging.front() {
            if I::ACTIVE
                && f.sub() == SubKind::Data
                && matches!(f.kind(), PacketKind::SingleRead | PacketKind::BlockRead)
                && injector.bank_drop(now, self.node.index() as u16)
            {
                self.staging.pop_front();
                if S::ACTIVE {
                    sink.record(now, TraceEvent::FaultBankDrop { bank: self.node.index() as u16 });
                }
                continue;
            }
            match self.out_fifo.push(f) {
                Ok(()) => {
                    self.staging.pop_front();
                }
                Err(_) => break,
            }
        }

        if !matches!(self.state, State::Idle) {
            self.stats.busy_cycles.inc();
        }

        match std::mem::replace(&mut self.state, State::Idle) {
            State::Idle => self.dispatch(now, sink, injector),
            State::Busy { until, then } => {
                if now >= until {
                    self.complete(then);
                } else {
                    self.state = State::Busy { until, then };
                }
            }
            State::AwaitData { src, kind, addr, mut words, expect } => {
                while let Some(flit) = self.data_fifo.pop() {
                    debug_assert_eq!(flit.src_id(), src, "interleaved write data");
                    let seq = flit.seq() as usize;
                    if seq < words.len() {
                        words[seq] = Some(flit.payload());
                    } else {
                        self.stats.protocol_drops.inc();
                    }
                }
                if words.iter().take(expect).all(Option::is_some) {
                    let latency = self.commit_write(kind, addr, &words, expect);
                    let ack = self.response(src, kind, SubKind::Ack, 1, addr);
                    self.state =
                        State::Busy { until: now + latency, then: Completion::Respond(vec![ack]) };
                } else {
                    self.state = State::AwaitData { src, kind, addr, words, expect };
                }
            }
        }
    }

    fn dispatch<S: TraceSink, I: FaultInjector>(
        &mut self,
        now: Cycle,
        sink: &mut S,
        injector: &mut I,
    ) {
        let Some(req) = self.req_fifo.pop() else {
            return;
        };
        debug_assert_eq!(req.sub(), SubKind::Request);
        let src = req.src_id();
        let addr = req.payload();
        let mut overhead = self.cfg.service_overhead;
        if I::ACTIVE {
            // A slow bank is slow for every transaction it serves: the
            // injected delay rides the service overhead all kinds share.
            let extra = injector.bank_delay(now, self.node.index() as u16);
            if extra > 0 {
                overhead += extra as Cycle;
                if S::ACTIVE {
                    sink.record(
                        now,
                        TraceEvent::FaultBankDelay {
                            bank: self.node.index() as u16,
                            cycles: extra,
                        },
                    );
                }
            }
        }
        if S::ACTIVE && !matches!(req.kind(), PacketKind::Lock | PacketKind::Unlock) {
            sink.record(
                now,
                TraceEvent::MemTxn {
                    bank: self.node.index() as u16,
                    src: src as u16,
                    kind: req.kind().code(),
                    addr,
                },
            );
        }
        match req.kind() {
            PacketKind::SingleRead => {
                let (value, lat) = self.mem_read_word(addr);
                self.stats.single_reads.inc();
                let data = self.response(src, PacketKind::SingleRead, SubKind::Data, 0, value);
                self.state = State::Busy {
                    until: now + overhead + lat,
                    then: Completion::Respond(vec![data]),
                };
            }
            PacketKind::BlockRead => {
                let line = line_of(addr);
                let (data, lat) = self.mem_read_line(line);
                self.stats.block_reads.inc();
                let flits = data
                    .iter()
                    .enumerate()
                    .map(|(i, w)| {
                        let mut f =
                            self.response(src, PacketKind::BlockRead, SubKind::Data, i as u8, *w);
                        f = Flit::new(
                            f.dest(),
                            f.kind(),
                            f.sub(),
                            i as u8,
                            burst_code(WORDS_PER_LINE),
                            f.src_id(),
                            f.payload(),
                        );
                        f
                    })
                    .collect();
                self.state =
                    State::Busy { until: now + overhead + lat, then: Completion::Respond(flits) };
            }
            PacketKind::SingleWrite | PacketKind::BlockWrite => {
                let expect = if req.kind() == PacketKind::SingleWrite { 1 } else { WORDS_PER_LINE };
                self.state = State::Busy {
                    until: now + overhead,
                    then: Completion::Grant { src, kind: req.kind(), addr, expect },
                };
            }
            PacketKind::Lock => {
                let granted = self.locks.try_lock(addr, NodeId::new(src as u16));
                if S::ACTIVE {
                    let (bank, src) = (self.node.index() as u16, src as u16);
                    sink.record(
                        now,
                        if granted {
                            TraceEvent::LockAcquired { bank, src, addr }
                        } else {
                            TraceEvent::LockContended { bank, src, addr }
                        },
                    );
                }
                let sub = if granted {
                    self.stats.locks_granted.inc();
                    SubKind::Ack
                } else {
                    self.stats.lock_nacks.inc();
                    SubKind::Nack
                };
                let resp = self.response(src, PacketKind::Lock, sub, 0, addr);
                self.state =
                    State::Busy { until: now + overhead, then: Completion::Respond(vec![resp]) };
            }
            PacketKind::Unlock => {
                let sub = match self.locks.unlock(addr, NodeId::new(src as u16)) {
                    Ok(()) => {
                        if S::ACTIVE {
                            sink.record(
                                now,
                                TraceEvent::LockReleased {
                                    bank: self.node.index() as u16,
                                    src: src as u16,
                                    addr,
                                },
                            );
                        }
                        self.stats.unlocks.inc();
                        SubKind::Ack
                    }
                    Err(_) => {
                        self.stats.unlock_errors.inc();
                        SubKind::Nack
                    }
                };
                let resp = self.response(src, PacketKind::Unlock, sub, 0, addr);
                self.state =
                    State::Busy { until: now + overhead, then: Completion::Respond(vec![resp]) };
            }
            PacketKind::Message => unreachable!("filtered in handle_incoming"),
        }
    }

    fn complete(&mut self, completion: Completion) {
        match completion {
            Completion::Respond(flits) => {
                self.staging.extend(flits);
                self.state = State::Idle;
            }
            Completion::Grant { src, kind, addr, expect } => {
                let grant = self.response(src, kind, SubKind::Ack, 0, addr);
                self.staging.push_back(grant);
                self.state =
                    State::AwaitData { src, kind, addr, words: vec![None; WORDS_PER_LINE], expect };
            }
        }
    }

    fn commit_write(
        &mut self,
        kind: PacketKind,
        addr: Addr,
        words: &[Option<u32>],
        expect: usize,
    ) -> Cycle {
        match kind {
            PacketKind::SingleWrite => {
                self.stats.single_writes.inc();
                let value = words[0].expect("collected");
                self.mem_write_word(addr, value)
            }
            PacketKind::BlockWrite => {
                self.stats.block_writes.inc();
                let line = line_of(addr);
                let mut data = [0u32; WORDS_PER_LINE];
                for (i, slot) in words.iter().take(expect).enumerate() {
                    data[i] = slot.expect("collected");
                }
                self.mem_write_line(line, data)
            }
            _ => unreachable!("only writes reach commit_write"),
        }
    }

    fn response(&self, src: u8, kind: PacketKind, sub: SubKind, seq: u8, data: u32) -> Flit {
        let dest = self.topo.coord_of(NodeId::new(src as u16));
        Flit::new(dest, kind, sub, seq, 0, self.node.index() as u8, data)
    }

    // ---- memory hierarchy (MPMMU cache in front of DDR) ----

    fn allocate(&mut self, line: Addr) -> Cycle {
        let mut lat = self.cfg.ddr.read_latency(WORDS_PER_LINE);
        if let Some(victim) = self.cache.evict_for(line) {
            self.store.write_line(victim.line, victim.data);
            lat += self.cfg.ddr.write_latency(WORDS_PER_LINE);
        }
        let data = self.store.read_line(line);
        self.cache.fill_line(line, data);
        lat
    }

    fn mem_read_line(&mut self, line: Addr) -> ([u32; WORDS_PER_LINE], Cycle) {
        let mut lat = self.cfg.cache_hit_latency;
        if !self.cache.probe(line) {
            lat += self.allocate(line);
        }
        let mut data = [0u32; WORDS_PER_LINE];
        for (i, word) in data.iter_mut().enumerate() {
            *word =
                self.cache.load_word(line + (i as Addr) * 4).expect("line resident after allocate");
        }
        (data, lat)
    }

    fn mem_read_word(&mut self, addr: Addr) -> (u32, Cycle) {
        let mut lat = self.cfg.cache_hit_latency;
        if !self.cache.probe(addr) {
            lat += self.allocate(line_of(addr));
        }
        let value = self.cache.load_word(addr).expect("resident after allocate");
        (value, lat)
    }

    fn mem_write_word(&mut self, addr: Addr, value: u32) -> Cycle {
        let mut lat = self.cfg.cache_hit_latency;
        match self.cache.store_word(addr, value) {
            StoreOutcome::Absorbed => {}
            StoreOutcome::WriteThrough => {
                self.store.write_word(addr, value);
                lat += self.cfg.ddr.write_latency(1);
            }
            StoreOutcome::NeedsAllocate => {
                lat += self.allocate(line_of(addr));
                match self.cache.store_word(addr, value) {
                    StoreOutcome::Absorbed => {}
                    other => unreachable!("retry after allocate: {other:?}"),
                }
            }
        }
        lat
    }

    fn mem_write_line(&mut self, line: Addr, data: [u32; WORDS_PER_LINE]) -> Cycle {
        let mut lat = self.cfg.cache_hit_latency;
        if !self.cache.probe(line) {
            lat += self.allocate(line);
        }
        for (i, word) in data.iter().enumerate() {
            match self.cache.store_word(line + (i as Addr) * 4, *word) {
                StoreOutcome::Absorbed => {}
                StoreOutcome::WriteThrough => {
                    self.store.write_word(line + (i as Addr) * 4, *word);
                }
                StoreOutcome::NeedsAllocate => unreachable!("line resident"),
            }
        }
        lat
    }
}

// Compile-time pin of the tiled-engine ownership contract: a bank must
// be movable to its owning worker thread (`Send`). `Sync` is neither
// needed nor wanted — shared access would hide a tiling bug.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Mpmmu>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(num_procs: usize) -> Mpmmu {
        let topo = Topology::paper_4x4();
        Mpmmu::new(topo, NodeId::new(0), MpmmuConfig::new(num_procs, 64 * 1024))
    }

    fn req(kind: PacketKind, src: u8, addr: u32) -> Flit {
        // Requests travel toward the MPMMU at (0,0).
        Flit::request(medea_noc::coord::Coord::new(0, 0), kind, src, addr)
    }

    fn data_flit(src: u8, seq: u8, value: u32) -> Flit {
        Flit::new(
            medea_noc::coord::Coord::new(0, 0),
            PacketKind::BlockWrite,
            SubKind::Data,
            seq,
            burst_code(4),
            src,
            value,
        )
    }

    fn run_until_response(m: &mut Mpmmu, start: Cycle, limit: Cycle) -> (Flit, Cycle) {
        for now in start..start + limit {
            m.tick(now);
            if let Some(f) = m.pop_outgoing() {
                return (f, now);
            }
        }
        panic!("no response within {limit} cycles");
    }

    #[test]
    fn single_read_roundtrip() {
        let mut m = mk(4);
        m.debug_store().write_word(0x100, 77);
        m.handle_incoming(req(PacketKind::SingleRead, 5, 0x100)).unwrap();
        let (resp, when) = run_until_response(&mut m, 0, 100);
        assert_eq!(resp.kind(), PacketKind::SingleRead);
        assert_eq!(resp.sub(), SubKind::Data);
        assert_eq!(resp.payload(), 77);
        // Response goes back to node 5 = (1,1).
        assert_eq!(resp.dest(), medea_noc::coord::Coord::new(1, 1));
        // Cold miss: must include DDR latency.
        assert!(when >= 24, "response at {when} ignored DDR latency");
        assert_eq!(m.stats().single_reads.get(), 1);
    }

    #[test]
    fn cached_read_is_faster() {
        let mut m = mk(4);
        m.debug_store().write_word(0x100, 1);
        m.handle_incoming(req(PacketKind::SingleRead, 5, 0x100)).unwrap();
        let (_, cold) = run_until_response(&mut m, 0, 200);
        let start = cold + 1;
        m.handle_incoming(req(PacketKind::SingleRead, 5, 0x100)).unwrap();
        let (_, warm_abs) = run_until_response(&mut m, start, 200);
        let warm = warm_abs - start;
        assert!(warm < cold, "warm {warm} !< cold {cold}");
    }

    #[test]
    fn block_read_returns_four_sequenced_flits() {
        let mut m = mk(4);
        m.debug_store().write_line(0x40, [10, 20, 30, 40]);
        m.handle_incoming(req(PacketKind::BlockRead, 3, 0x44)).unwrap();
        let mut flits = Vec::new();
        for now in 0..200 {
            m.tick(now);
            while let Some(f) = m.pop_outgoing() {
                flits.push(f);
            }
            if flits.len() == 4 {
                break;
            }
        }
        assert_eq!(flits.len(), 4);
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(f.seq() as usize, i);
            assert_eq!(f.payload(), (10 * (i + 1)) as u32);
            assert_eq!(f.burst_flits(), 4);
        }
    }

    #[test]
    fn write_protocol_grant_data_ack() {
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::SingleWrite, 2, 0x200)).unwrap();
        let (grant, when) = run_until_response(&mut m, 0, 100);
        assert_eq!(grant.sub(), SubKind::Ack);
        assert_eq!(grant.seq(), 0, "grant carries seq 0");
        // Send the data flit.
        let mut d = data_flit(2, 0, 4242);
        d = Flit::new(d.dest(), PacketKind::SingleWrite, SubKind::Data, 0, 0, 2, 4242);
        m.handle_incoming(d).unwrap();
        let (ack, _) = run_until_response(&mut m, when + 1, 200);
        assert_eq!(ack.sub(), SubKind::Ack);
        assert_eq!(ack.seq(), 1, "final ack carries seq 1");
        assert_eq!(m.debug_read_word(0x200), 4242);
        assert_eq!(m.stats().single_writes.get(), 1);
    }

    #[test]
    fn block_write_out_of_order_data() {
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::BlockWrite, 2, 0x80)).unwrap();
        let (_grant, when) = run_until_response(&mut m, 0, 100);
        // Data arrives out of order — sequence numbers sort it out.
        for seq in [2u8, 0, 3, 1] {
            m.handle_incoming(data_flit(2, seq, 100 + seq as u32)).unwrap();
        }
        let (ack, _) = run_until_response(&mut m, when + 1, 300);
        assert_eq!(ack.sub(), SubKind::Ack);
        assert_eq!(m.debug_read_word(0x80), 100);
        assert_eq!(m.debug_read_word(0x84), 101);
        assert_eq!(m.debug_read_word(0x88), 102);
        assert_eq!(m.debug_read_word(0x8C), 103);
    }

    #[test]
    fn lock_grant_nack_unlock() {
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::Lock, 1, 0x300)).unwrap();
        let (r1, t1) = run_until_response(&mut m, 0, 50);
        assert_eq!(r1.sub(), SubKind::Ack);
        m.handle_incoming(req(PacketKind::Lock, 2, 0x300)).unwrap();
        let (r2, t2) = run_until_response(&mut m, t1 + 1, 50);
        assert_eq!(r2.sub(), SubKind::Nack);
        m.handle_incoming(req(PacketKind::Unlock, 1, 0x300)).unwrap();
        let (r3, t3) = run_until_response(&mut m, t2 + 1, 50);
        assert_eq!(r3.sub(), SubKind::Ack);
        m.handle_incoming(req(PacketKind::Lock, 2, 0x300)).unwrap();
        let (r4, _) = run_until_response(&mut m, t3 + 1, 50);
        assert_eq!(r4.sub(), SubKind::Ack);
        assert_eq!(m.stats().lock_nacks.get(), 1);
        assert_eq!(m.stats().locks_granted.get(), 2);
    }

    #[test]
    fn unlock_violation_nacked() {
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::Unlock, 1, 0x300)).unwrap();
        let (r, _) = run_until_response(&mut m, 0, 50);
        assert_eq!(r.sub(), SubKind::Nack);
        assert_eq!(m.stats().unlock_errors.get(), 1);
    }

    #[test]
    fn requests_serialized_in_order() {
        let mut m = mk(4);
        m.debug_store().write_word(0x10, 1);
        m.debug_store().write_word(0x20, 2);
        m.handle_incoming(req(PacketKind::SingleRead, 1, 0x10)).unwrap();
        m.handle_incoming(req(PacketKind::SingleRead, 2, 0x20)).unwrap();
        let (first, t1) = run_until_response(&mut m, 0, 200);
        let (second, _) = run_until_response(&mut m, t1 + 1, 200);
        assert_eq!(first.payload(), 1);
        assert_eq!(second.payload(), 2);
    }

    #[test]
    fn req_fifo_backpressure() {
        let mut m = mk(2); // request queue depth 2
        assert!(m.handle_incoming(req(PacketKind::SingleRead, 1, 0x0)).is_ok());
        assert!(m.handle_incoming(req(PacketKind::SingleRead, 2, 0x0)).is_ok());
        assert!(m.handle_incoming(req(PacketKind::SingleRead, 3, 0x0)).is_err());
    }

    #[test]
    fn message_flit_dropped() {
        let mut m = mk(4);
        let msg = Flit::message(medea_noc::coord::Coord::new(0, 0), 1, 0, 0, 5);
        assert!(m.handle_incoming(msg).is_ok());
        assert_eq!(m.stats().protocol_drops.get(), 1);
        assert!(m.is_idle());
    }

    #[test]
    fn idle_detection() {
        let mut m = mk(4);
        assert!(m.is_idle());
        m.handle_incoming(req(PacketKind::SingleRead, 1, 0x0)).unwrap();
        assert!(!m.is_idle());
        let _ = run_until_response(&mut m, 0, 200);
        m.tick(1000);
        assert!(m.is_idle());
    }

    #[test]
    fn return_outgoing_preserves_order() {
        let mut m = mk(4);
        m.debug_store().write_line(0x40, [9, 8, 7, 6]);
        m.handle_incoming(req(PacketKind::BlockRead, 3, 0x40)).unwrap();
        let mut first = None;
        for now in 0..200 {
            m.tick(now);
            if let Some(f) = m.pop_outgoing() {
                first = Some(f);
                break;
            }
        }
        let f = first.unwrap();
        m.return_outgoing(f);
        let again = m.pop_outgoing().unwrap();
        assert_eq!(again, f, "returned flit must come out first again");
    }

    #[test]
    fn injected_drop_swallows_read_responses_only() {
        use medea_fault::{FaultConfig, ScheduledInjector, PPM};
        let mut inj = ScheduledInjector::new(FaultConfig {
            bank_drop_ppm: PPM as u32, // every read response lost
            ..FaultConfig::default()
        });
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::SingleRead, 2, 0x40)).unwrap();
        for now in 0..400 {
            m.tick_faulted(now, &mut medea_trace::NullSink, &mut inj);
            assert!(m.pop_outgoing().is_none(), "dropped response escaped at {now}");
        }
        assert!(inj.stats().bank_drops > 0);
        // A lock ack is control traffic: never dropped.
        m.handle_incoming(req(PacketKind::Lock, 2, 0x40)).unwrap();
        let mut granted = false;
        for now in 400..500 {
            m.tick_faulted(now, &mut medea_trace::NullSink, &mut inj);
            if let Some(f) = m.pop_outgoing() {
                assert_eq!(f.kind(), PacketKind::Lock);
                assert_eq!(f.sub(), SubKind::Ack);
                granted = true;
                break;
            }
        }
        assert!(granted, "lock traffic must survive a drop-everything bank");
    }

    #[test]
    fn injected_delay_slows_service() {
        use medea_fault::{FaultConfig, ScheduledInjector, PPM};
        let mut m = mk(4);
        m.handle_incoming(req(PacketKind::SingleRead, 2, 0x40)).unwrap();
        let (_, base) = run_until_response(&mut m, 0, 400);

        let mut inj = ScheduledInjector::new(FaultConfig {
            bank_delay_ppm: PPM as u32,
            bank_delay_cycles: 64,
            ..FaultConfig::default()
        });
        let mut slow = mk(4);
        slow.handle_incoming(req(PacketKind::SingleRead, 2, 0x40)).unwrap();
        let mut arrived = None;
        for now in 0..1000 {
            slow.tick_faulted(now, &mut medea_trace::NullSink, &mut inj);
            if slow.pop_outgoing().is_some() {
                arrived = Some(now);
                break;
            }
        }
        let slow_at = arrived.expect("delayed, not lost");
        assert!(slow_at >= base + 64, "delay must defer the response: base {base}, slow {slow_at}");
        assert_eq!(inj.stats().bank_delays, 1);
        assert_eq!(inj.stats().bank_delay_cycles, 64);
    }
}
