//! # MEDEA — hybrid shared-memory/message-passing NoC multiprocessor
//!
//! Facade crate for the reproduction of *"MEDEA: a Hybrid
//! Shared-memory/Message-passing Multiprocessor NoC-based Architecture"*
//! (Tota, Casu, Ruo Roch, Rostagno, Zamboni — DATE 2010).
//!
//! This crate re-exports the public API of the individual subsystem crates:
//!
//! * [`sim`] — cycle-stepped simulation kernel and kernel-thread coroutines;
//! * [`trace`] — zero-overhead cross-layer event tracing with Chrome-trace
//!   and CSV export;
//! * [`noc`] — folded-torus network-on-chip with deflection routing;
//! * [`fault`] — deterministic seeded cross-layer fault injection;
//! * [`cache`] — write-back / write-through L1 cache models;
//! * [`mem`] — MPMMU, lock table and DDR model;
//! * [`metrics`] — zero-cost cycle attribution, time-series sampling and
//!   the NoC heatmap report;
//! * [`pe`] — processing element: TIE interface, pif2NoC bridge, arbiter;
//! * [`core`] — system assembly, eMPI programming model, area model and
//!   design-space exploration;
//! * [`apps`] — the parallel Jacobi workloads and auxiliary kernels.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete runnable example; the short
//! version is:
//!
//! ```
//! use medea::core::{SystemConfig, CachePolicy};
//! use medea::apps::jacobi::{JacobiConfig, JacobiVariant};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = SystemConfig::builder()
//!     .compute_pes(4)
//!     .cache_bytes(16 * 1024)
//!     .cache_policy(CachePolicy::WriteBack)
//!     .build()?;
//! let jacobi = JacobiConfig::new(16, JacobiVariant::HybridFullMp)
//!     .with_warmup_iters(1)
//!     .with_measured_iters(1);
//! let outcome = medea::apps::jacobi::run(&system, &jacobi)?;
//! assert!(outcome.run.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub use medea_apps as apps;
pub use medea_cache as cache;
pub use medea_core as core;
pub use medea_fault as fault;
pub use medea_mem as mem;
pub use medea_metrics as metrics;
pub use medea_noc as noc;
pub use medea_pe as pe;
pub use medea_sim as sim;
pub use medea_trace as trace;
