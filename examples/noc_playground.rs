//! Standalone NoC exploration: drive the deflection-routed folded torus
//! with synthetic traffic and watch latency, throughput and deflection
//! behaviour across offered load — the §II-A design claims made visible.
//!
//! ```text
//! cargo run --release --example noc_playground
//! ```

use medea::noc::coord::Topology;
use medea::noc::ideal::IdealNetwork;
use medea::noc::network::Network;
use medea::noc::traffic::{run_open_loop, Pattern, TrafficConfig};
use medea::sim::ids::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::new(4, 4)?;
    println!("{} deflection-routed folded torus\n", topo);
    println!(
        "{:>10} {:>8} {:>9} {:>9} {:>8} {:>10}",
        "pattern", "offered", "accepted", "mean lat", "max lat", "defl/flit"
    );
    for pattern in [Pattern::UniformRandom, Pattern::Transpose, Pattern::HotSpot(NodeId::new(0))] {
        for load in [0.05f64, 0.2, 0.4, 0.6, 0.9] {
            let mut net = Network::new(topo);
            let cfg = TrafficConfig { pattern, offered_load: load, ..TrafficConfig::default() };
            let rep = run_open_loop(&mut net, topo, &cfg);
            println!(
                "{:>10} {:>8.2} {:>9.3} {:>9.1} {:>8} {:>10.2}",
                pattern.to_string(),
                rep.offered_load,
                rep.accepted_throughput,
                rep.mean_latency,
                rep.max_latency,
                rep.deflections_per_flit
            );
        }
        println!();
    }

    println!("ideal (contention-free) fabric for comparison, uniform traffic:");
    for load in [0.2f64, 0.6] {
        let mut net = IdealNetwork::new(topo);
        let cfg = TrafficConfig {
            pattern: Pattern::UniformRandom,
            offered_load: load,
            ..TrafficConfig::default()
        };
        let rep = run_open_loop(&mut net, topo, &cfg);
        println!(
            "  load {:.1}: accepted {:.3}, mean latency {:.1}, max {}",
            load, rep.accepted_throughput, rep.mean_latency, rep.max_latency
        );
    }
    Ok(())
}
