//! Design-space exploration in miniature: sweep core count and cache size
//! for a Jacobi workload, then apply the paper's area model, Pareto
//! pruning and kill rule to find the "optimal" configurations (the
//! Fig. 7/9 methodology).
//!
//! ```text
//! cargo run --release --example design_exploration
//! ```

use medea::apps::jacobi::{JacobiConfig, JacobiVariant, JacobiWorkload};
use medea::core::area::{apply_kill_rule, chip_area_mm2, pareto_frontier, DesignPoint};
use medea::core::explore::{run_sweep, SweepOutcome, SweepPoint};
use medea::core::{CachePolicy, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24; // grid side; the paper's 60x60 works too, just slower
    let mut points = Vec::new();
    for pes in [2usize, 4, 6, 8, 10, 12] {
        for cache_kb in [2usize, 8, 16, 32] {
            points.push(SweepPoint::new(pes, cache_kb * 1024, CachePolicy::WriteBack));
        }
    }
    let workload = JacobiWorkload { jcfg: JacobiConfig::new(n, JacobiVariant::HybridFullMp) };
    let base = SystemConfig::builder().cycle_limit(400_000_000);
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
    println!("sweeping {} configurations on {threads} threads...", points.len());
    let outcomes = run_sweep(&workload, &points, &base, threads);

    // Speedup relative to the slowest configuration, area from the
    // TSMC-65nm model.
    let reference = outcomes.iter().filter_map(SweepOutcome::measured).max().unwrap_or(1) as f64;
    let design_points: Vec<DesignPoint> = outcomes
        .iter()
        .filter_map(|o| {
            let measured = o.measured()?;
            let cfg = o.point.apply(SystemConfig::builder());
            Some(DesignPoint {
                label: o.label.clone(),
                area_mm2: chip_area_mm2(&cfg),
                speedup: reference / measured as f64,
            })
        })
        .collect();

    let frontier = pareto_frontier(design_points);
    let optimal = apply_kill_rule(&frontier, 1.0);

    println!("\nPareto frontier (area mm², speedup):");
    for p in &frontier {
        println!("  {:>12}  {:6.2} mm²  {:6.2}x", p.label, p.area_mm2, p.speedup);
    }
    println!("\nAfter the kill rule (keep only ≥1% perf per 1% area):");
    for p in &optimal {
        println!("  {:>12}  {:6.2} mm²  {:6.2}x", p.label, p.area_mm2, p.speedup);
    }
    let best = optimal.last().ok_or("no optimal point")?;
    println!("\n'optimal' design for this workload: {}", best.label);
    Ok(())
}
