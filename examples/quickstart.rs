//! Quickstart: build a MEDEA system, run the hybrid Jacobi benchmark,
//! validate it against the sequential reference and print what the
//! simulator measured.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use medea::apps::jacobi::{self, JacobiConfig, JacobiVariant};
use medea::core::{CachePolicy, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6-core MEDEA instance: 5 compute PEs + the MPMMU on the 4x4
    // folded torus, 16 kB write-back L1 caches.
    let system = SystemConfig::builder()
        .compute_pes(5)
        .cache_bytes(16 * 1024)
        .cache_policy(CachePolicy::WriteBack)
        .build()?;

    // The paper's benchmark: parallel Jacobi, hybrid programming model
    // (message passing for halo exchange and synchronization).
    let jcfg = JacobiConfig::new(30, JacobiVariant::HybridFullMp)
        .with_warmup_iters(1)
        .with_measured_iters(2)
        .with_validation();

    let outcome = jacobi::run(&system, &jcfg)?;
    jacobi::validate_against_reference(&jcfg, &outcome)
        .map_err(|e| format!("validation failed: {e}"))?;

    println!("configuration       : {}", system.label());
    println!("cycles / iteration  : {}", outcome.cycles_per_iter);
    println!("total cycles        : {}", outcome.run.cycles);
    println!("L1 miss rate        : {:.2}%", outcome.run.l1_miss_rate().unwrap_or(0.0) * 100.0);
    println!("flits delivered     : {}", outcome.run.fabric_delivered);
    println!("flit deflections    : {}", outcome.run.fabric_deflections);
    println!("mean flit latency   : {:.1} cycles", outcome.run.fabric_mean_latency.unwrap_or(0.0));
    println!(
        "MPMMU transactions  : {} block reads, {} block writes, {} locks",
        outcome.run.mpmmu.block_reads.get(),
        outcome.run.mpmmu.block_writes.get(),
        outcome.run.mpmmu.locks_granted.get()
    );
    println!("simulation rate     : {:.2} Mcycles/s", outcome.run.sim_rate() / 1e6);
    println!("result validated against the sequential reference — OK");
    Ok(())
}
