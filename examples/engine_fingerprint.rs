//! Print the golden-determinism fingerprints of a few fixed workloads —
//! a quick manual probe for engine-rewrite verification (see
//! tests/golden_determinism.rs for the enforced version).

use medea::core::api::PeApi;
use medea::core::system::{Kernel, System};
use medea::core::{Empi, SystemConfig};
use medea::sim::ids::Rank;

fn cfg(pes: usize) -> SystemConfig {
    SystemConfig::builder().compute_pes(pes).cycle_limit(50_000_000).build().unwrap()
}

fn pingpong_kernels() -> Vec<Kernel> {
    let ping: Kernel = Box::new(|api: PeApi| {
        for i in 1..=40u32 {
            api.send_to_rank(Rank::new(1), &[i]);
            let back = api.recv_from_rank(Rank::new(1));
            assert_eq!(back[0], i);
        }
    });
    let pong: Kernel = Box::new(|api: PeApi| {
        for _ in 1..=40u32 {
            let v = api.recv_from_rank(Rank::new(0));
            api.send_to_rank(Rank::new(0), &v);
        }
    });
    vec![ping, pong]
}

// Hand-rolled gather-to-root + broadcast (not `Empi::allreduce`): the
// seed's exact call sequence, so the printed fingerprint stays comparable
// with the known-good values recorded before the communicator redesign.
fn reduce_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                comm.compute(50 + 137 * r as u64);
                comm.barrier();
                let mine = r as f64 + 0.5;
                if comm.rank().is_master() {
                    let mut acc = mine;
                    for src in 1..comm.ranks() {
                        acc = comm.fadd(acc, comm.recv_f64(Rank::new(src as u8))[0]);
                    }
                    for dst in 1..comm.ranks() {
                        comm.send_f64(Rank::new(dst as u8), &[acc]);
                    }
                } else {
                    comm.send_f64(Rank::new(0), &[mine]);
                    comm.recv_f64(Rank::new(0));
                }
            }) as Kernel
        })
        .collect()
}

fn gather_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                if r == 0 {
                    for src in 1..comm.ranks() {
                        let got = comm.recv(Rank::new(src as u8));
                        assert_eq!(got.len(), 40);
                    }
                } else {
                    let payload: Vec<u32> = (0..40).map(|i| (r * 1000 + i) as u32).collect();
                    comm.send(Rank::new(0), &payload);
                }
            }) as Kernel
        })
        .collect()
}

fn main() {
    let p = System::run(&cfg(2), &[], pingpong_kernels()).unwrap();
    println!(
        "pingpong: cycles={} delivered={} deflections={} max_lat={:?}",
        p.cycles, p.fabric_delivered, p.fabric_deflections, p.fabric_max_latency
    );
    let r = System::run(&cfg(6), &[], reduce_kernels(6)).unwrap();
    println!(
        "reduce6:  cycles={} delivered={} deflections={} max_lat={:?}",
        r.cycles, r.fabric_delivered, r.fabric_deflections, r.fabric_max_latency
    );
    let g = System::run(&cfg(8), &[], gather_kernels(8)).unwrap();
    println!(
        "gather8:  cycles={} delivered={} deflections={} max_lat={:?}",
        g.cycles, g.fabric_delivered, g.fabric_deflections, g.fabric_max_latency
    );
}
