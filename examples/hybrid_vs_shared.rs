//! The paper's headline comparison: how much does the hybrid
//! shared-memory/message-passing model gain over pure shared memory?
//!
//! Runs the same Jacobi problem under all three programming models and the
//! one-word synchronization ping-pong, printing the gains the paper
//! reports in §III (≈2× below the cache knee, growing past 5× above it,
//! most of it attributable to synchronization).
//!
//! ```text
//! cargo run --release --example hybrid_vs_shared
//! ```

use medea::apps::jacobi::{self, JacobiConfig, JacobiVariant};
use medea::apps::pingpong::{self, PingPongTransport};
use medea::core::{CachePolicy, SystemConfig};

fn measure(pes: usize, n: usize, variant: JacobiVariant) -> u64 {
    let system = SystemConfig::builder()
        .compute_pes(pes)
        .cache_bytes(16 * 1024)
        .cache_policy(CachePolicy::WriteBack)
        .build()
        .expect("valid configuration");
    let jcfg = JacobiConfig::new(n, variant);
    jacobi::run(&system, &jcfg).expect("run").cycles_per_iter
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    println!("Jacobi {n}x{n}, 16 kB WB caches — cycles per iteration:\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "cores", "full-MP", "sync-only", "pure-SM", "gain", "sync share"
    );
    for pes in [2usize, 4, 6, 8] {
        let full = measure(pes, n, JacobiVariant::HybridFullMp);
        let sync_only = measure(pes, n, JacobiVariant::HybridSyncOnly);
        let pure = measure(pes, n, JacobiVariant::PureSharedMemory);
        let gain = pure as f64 / full as f64;
        let sync_gain = pure as f64 / sync_only as f64;
        println!(
            "{pes:>6} {full:>12} {sync_only:>12} {pure:>12} {gain:>9.2}x {:>11.0}%",
            sync_gain / gain * 100.0
        );
    }

    println!("\nOne-word synchronization round trip (2 ranks):");
    let sys = SystemConfig::builder().compute_pes(2).build()?;
    let mp = pingpong::run(&sys, PingPongTransport::MessagePassing, 200)?;
    let sm = pingpong::run(&sys, PingPongTransport::SharedMemory, 200)?;
    println!("  message passing : {:>7.1} cycles", mp.cycles_per_round);
    println!("  shared memory   : {:>7.1} cycles", sm.cycles_per_round);
    println!("  MP advantage    : {:>7.2}x", sm.cycles_per_round / mp.cycles_per_round);
    Ok(())
}
