//! Equivalence and validity tests for the `medea-metrics` subsystem.
//!
//! The profiler is observation only, with the same contract tracing and
//! fault injection already pin:
//!
//! * **Metrics-off is the paper** — with the subsystem compiled in but
//!   disabled (the default), the paper-4×4 golden fingerprints hold
//!   verbatim and `RunResult.metrics` stays `None`.
//! * **Metrics-on is free** — for random small tori, PE counts, workload
//!   mixes and sampling intervals, a metered run reproduces the unmetered
//!   `RunResult` counter for counter (property-tested), and the paper
//!   pins hold with live sampling enabled.
//! * **Tiled sampling is sequential sampling** — the per-tile recorder
//!   forks merge to a [`MetricsReport`] bit-identical to the sequential
//!   engine's at every thread count: same windows, same series, same
//!   per-PE attribution (`MetricsReport` is `PartialEq`; the whole report
//!   is compared at once).
//! * **Renderers emit valid artifacts** — the HTML heatmap's SVG is
//!   well-formed with exactly one cell per directed link, and the shared
//!   `utilization` JSON rows parse.

use medea::core::api::PeApi;
use medea::core::system::{Kernel, RunResult, System};
use medea::core::{Empi, MetricsConfig, PeActivity, SystemConfig, Topology};
use medea::metrics::heatmap::{check_svg_well_formed, render_heatmap_html};
use medea::sim::ids::Rank;
use medea::sim::rng::SplitMix64;
use proptest::prelude::*;

/// Thread counts the tiled sampler must match single-thread at.
const THREADS: [usize; 3] = [2, 3, 4];

fn builder(pes: usize) -> medea::core::SystemConfigBuilder {
    SystemConfig::builder().compute_pes(pes).cycle_limit(50_000_000)
}

fn metered(pes: usize, interval: u64, threads: usize) -> SystemConfig {
    builder(pes).metrics(MetricsConfig::every(interval)).host_threads(threads).build().unwrap()
}

/// Architectural identity: everything a `RunResult` observes except the
/// metrics attachment itself.
fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.cycles, b.cycles, "{label}: cycles");
    assert_eq!(a.fabric_delivered, b.fabric_delivered, "{label}: delivered");
    assert_eq!(a.fabric_deflections, b.fabric_deflections, "{label}: deflections");
    assert_eq!(a.fabric_mean_latency, b.fabric_mean_latency, "{label}: mean latency");
    assert_eq!(a.fabric_max_latency, b.fabric_max_latency, "{label}: max latency");
    assert_eq!(a.fabric_latency, b.fabric_latency, "{label}: latency histogram");
    assert_eq!(a.mpmmu.single_reads.get(), b.mpmmu.single_reads.get(), "{label}: mpmmu reads");
    assert_eq!(a.mpmmu.single_writes.get(), b.mpmmu.single_writes.get(), "{label}: mpmmu writes");
    assert_eq!(a.mpmmu.locks_granted.get(), b.mpmmu.locks_granted.get(), "{label}: locks");
    assert_eq!(a.mpmmu.lock_nacks.get(), b.mpmmu.lock_nacks.get(), "{label}: lock nacks");
    assert_eq!(a.mpmmu.busy_cycles.get(), b.mpmmu.busy_cycles.get(), "{label}: mpmmu busy");
    for (i, (pa, pb)) in a.pe.iter().zip(&b.pe).enumerate() {
        assert_eq!(pa.engine.requests.get(), pb.engine.requests.get(), "{label}: pe{i} requests");
        assert_eq!(
            pa.engine.compute_cycles.get(),
            pb.engine.compute_cycles.get(),
            "{label}: pe{i} compute"
        );
        assert_eq!(pa.engine.mem_cycles.get(), pb.engine.mem_cycles.get(), "{label}: pe{i} mem");
        assert_eq!(
            pa.engine.recv_wait_cycles.get(),
            pb.engine.recv_wait_cycles.get(),
            "{label}: pe{i} recv wait"
        );
        assert_eq!(pa.cache.load_hits.get(), pb.cache.load_hits.get(), "{label}: pe{i} hits");
        assert_eq!(
            pa.bridge.transactions.get(),
            pb.bridge.transactions.get(),
            "{label}: pe{i} bridge"
        );
        assert_eq!(pa.tie.flits_received.get(), pb.tie.flits_received.get(), "{label}: pe{i} tie");
    }
    for (ba, bb) in a.banks.iter().zip(&b.banks) {
        assert_eq!(ba.node, bb.node, "{label}: bank node");
        assert_eq!(
            ba.mpmmu.busy_cycles.get(),
            bb.mpmmu.busy_cycles.get(),
            "{label}: bank {} busy",
            ba.node
        );
    }
}

/// Seeded, deadlock-free mixed workload (the shape shared with the trace
/// and parallel equivalence suites): per-rank op soup, ring exchange,
/// barrier + allreduce, so every sampled subsystem fires.
fn seeded_kernels(ranks: usize, seed: u64, ops: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                const LOCK: u32 = 0x40;
                const COUNTER: u32 = 0x44;
                let comm = Empi::new(api);
                let mut rng = SplitMix64::new(seed ^ (r as u64).wrapping_mul(0x9E37_79B9));
                let base = comm.private_base();
                for i in 0..ops {
                    match rng.next_u64() % 6 {
                        0 => comm.compute(1 + rng.next_u64() % 64),
                        1 => comm.store_u32(base + (i as u32 % 16) * 4, rng.next_u64() as u32),
                        2 => {
                            let _ = comm.load_u32(base + (i as u32 % 16) * 4);
                        }
                        3 => {
                            comm.flush_line(base);
                            comm.invalidate_line(base);
                        }
                        4 => {
                            comm.uncached_store_u32(0x80 + r as u32 * 4, i as u32);
                            let _ = comm.uncached_load_u32(0x80 + r as u32 * 4);
                        }
                        _ => {
                            comm.lock(LOCK);
                            let v = comm.uncached_load_u32(COUNTER);
                            comm.uncached_store_u32(COUNTER, v + 1);
                            comm.unlock(LOCK);
                        }
                    }
                }
                if comm.ranks() > 1 {
                    let rank = comm.rank().index();
                    let ranks = comm.ranks();
                    let next = Rank::new(((rank + 1) % ranks) as u8);
                    let prev = Rank::new(((rank + ranks - 1) % ranks) as u8);
                    let payload: Vec<u32> = (0..8).map(|i| (rank * 100 + i) as u32).collect();
                    let got = comm.sendrecv(Some(next), &payload, Some(prev)).expect("ring");
                    assert_eq!(got[0] as usize, ((rank + ranks - 1) % ranks) * 100);
                }
                comm.barrier();
                let total = comm.allreduce(r as f64 + 0.25);
                let expect = (0..comm.ranks()).map(|k| k as f64 + 0.25).sum::<f64>();
                assert_eq!(total.to_bits(), expect.to_bits());
            }) as Kernel
        })
        .collect()
}

// ---------------------------------------------------------------------
// Pinned paper workloads (shapes shared with tests/golden_determinism.rs)
// ---------------------------------------------------------------------

fn pingpong_kernels() -> Vec<Kernel> {
    let ping: Kernel = Box::new(|api: PeApi| {
        for i in 1..=40u32 {
            api.send_to_rank(Rank::new(1), &[i]);
            let back = api.recv_from_rank(Rank::new(1));
            assert_eq!(back[0], i);
        }
    });
    let pong: Kernel = Box::new(|api: PeApi| {
        for _ in 1..=40u32 {
            let v = api.recv_from_rank(Rank::new(0));
            api.send_to_rank(Rank::new(0), &v);
        }
    });
    vec![ping, pong]
}

fn gather_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                if r == 0 {
                    for src in 1..comm.ranks() {
                        let got = comm.recv(Rank::new(src as u8));
                        assert_eq!(got.len(), 40);
                    }
                } else {
                    let payload: Vec<u32> = (0..40).map(|i| (r * 1000 + i) as u32).collect();
                    comm.send(Rank::new(0), &payload);
                }
            }) as Kernel
        })
        .collect()
}

fn sharedmem_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                const COUNTER: u32 = 0x100;
                const LOCK: u32 = 0x200;
                for _ in 0..6 {
                    api.lock(LOCK);
                    let v = api.uncached_load_u32(COUNTER);
                    api.uncached_store_u32(COUNTER, v + 1);
                    api.unlock(LOCK);
                }
                api.store_f64(api.private_base(), r as f64);
                api.flush_line(api.private_base());
            }) as Kernel
        })
        .collect()
}

/// The paper-4×4 golden fingerprints (literal values carried from
/// `tests/golden_determinism.rs`).
type Pin = (&'static str, fn() -> Vec<Kernel>, usize, (u64, u64, u64, Option<u64>));
fn paper_pins() -> [Pin; 3] {
    [
        ("pingpong", pingpong_kernels, 2, (320, 80, 0, Some(1))),
        ("gather", || gather_kernels(8), 8, (695, 343, 5081, Some(187))),
        ("sharedmem", || sharedmem_kernels(5), 5, (2263, 704, 17, Some(5))),
    ]
}

fn fingerprint(r: &RunResult) -> (u64, u64, u64, Option<u64>) {
    (r.cycles, r.fabric_delivered, r.fabric_deflections, r.fabric_max_latency)
}

// ---------------------------------------------------------------------
// Metrics-off: the paper, verbatim
// ---------------------------------------------------------------------

/// With metrics compiled in but disabled (the default config), the
/// golden fingerprints hold and no report is attached.
#[test]
fn metrics_off_reproduces_paper_fingerprints_bit_for_bit() {
    for (name, kernels, pes, pin) in paper_pins() {
        let run = System::run(&builder(pes).build().unwrap(), &[], kernels()).expect(name);
        assert_eq!(fingerprint(&run), pin, "{name}: metrics-off run drifted");
        assert!(run.metrics.is_none(), "{name}: disabled metrics must not attach a report");
    }
}

/// And with live sampling enabled, the architectural fingerprints are
/// unchanged — sequential and tiled — while a populated report appears.
#[test]
fn metrics_on_reproduces_paper_fingerprints_bit_for_bit() {
    for (name, kernels, pes, pin) in paper_pins() {
        for threads in [1usize, 4] {
            let run = System::run(&metered(pes, 32, threads), &[], kernels()).expect(name);
            assert_eq!(fingerprint(&run), pin, "{name}@{threads}t: live sampling cost cycles");
            let report = run.metrics.as_ref().expect("metered run attaches a report");
            assert!(!report.windows.is_empty(), "{name}: sampler committed no windows");
            assert_eq!(report.end, run.cycles, "{name}: report end is the run end");
            assert_eq!(report.breakdown.len(), pes);
        }
    }
}

// ---------------------------------------------------------------------
// Tiled == sequential, report included
// ---------------------------------------------------------------------

/// The per-tile recorder forks merge to the *identical* report: every
/// sample window, every series, every per-PE breakdown, at every thread
/// count — compared wholesale through `MetricsReport: PartialEq`.
#[test]
fn tiled_sample_series_bit_identical_to_sequential() {
    let cases: [(u8, u8, usize, usize, u64); 4] = [
        // (cols, rows, pes, banks, seed)
        (4, 4, 8, 1, 0xD1CE),
        (4, 4, 12, 4, 0xBEEF),
        (8, 2, 10, 2, 0xCAFE),
        (2, 4, 6, 2, 0xF00D),
    ];
    for (cols, rows, pes, banks, seed) in cases {
        let topo = Topology::new(cols, rows).expect("valid torus");
        let label = format!("{cols}x{rows}/{pes}pe/{banks}bank");
        let build = |threads: usize| {
            SystemConfig::builder()
                .topology(topo)
                .compute_pes(pes)
                .memory_banks(banks)
                .cycle_limit(50_000_000)
                .metrics(MetricsConfig::every(48))
                .host_threads(threads)
                .build()
                .unwrap()
        };
        let seq = System::run(&build(1), &[], seeded_kernels(pes, seed, 12)).expect(&label);
        let seq_report = seq.metrics.as_ref().expect("sequential report");
        assert!(seq_report.windows.len() >= 2, "{label}: workload too short to compare series");
        for threads in THREADS {
            let tiled = System::run(&build(threads), &[], seeded_kernels(pes, seed, 12))
                .unwrap_or_else(|e| panic!("{label}@{threads}t: {e}"));
            assert_identical(&format!("{label}@{threads}t"), &tiled, &seq);
            assert_eq!(
                tiled.metrics, seq.metrics,
                "{label}@{threads}t: tiled report must be bit-identical"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Attribution accounting
// ---------------------------------------------------------------------

/// Every ticked cycle of every PE is charged to exactly one category:
/// per-PE totals equal the run's cycle count, so fractions sum to 1.0.
#[test]
fn attribution_is_exhaustive_and_exclusive() {
    let run = System::run(&metered(5, 64, 1), &[], sharedmem_kernels(5)).expect("metered run");
    let report = run.metrics.expect("report");
    for (i, b) in report.breakdown.iter().enumerate() {
        assert_eq!(b.total(), run.cycles, "pe{i}: attribution must cover the whole run");
        let sum: f64 = PeActivity::ALL.iter().map(|&a| b.fraction(a)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "pe{i}: fractions sum to {sum}");
    }
    let agg = report.aggregate();
    assert_eq!(agg.total(), run.cycles * 5, "aggregate covers every PE");
    // The lock-guarded counter workload must actually attribute lock
    // waiting, and nothing can hide in an unknown category.
    assert!(agg.cycles[PeActivity::LockWait.index()] > 0, "sharedmem must show lock-wait");
}

// ---------------------------------------------------------------------
// Property: metering is free
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Metered == unmetered, numerically, on random small tori, PE
    /// counts, bank counts, workloads and sampling intervals.
    #[test]
    fn metered_run_is_bit_identical_to_unmetered(
        dims in prop::sample::select(vec![(2u8, 2u8), (4, 2), (2, 4), (4, 4)]),
        pes in 2usize..=4,
        banks in 1usize..=2,
        seed in any::<u64>(),
        ops in 4usize..=16,
        interval in prop::sample::select(vec![1u64, 7, 32, 256, 10_000]),
    ) {
        let topo = Topology::new(dims.0, dims.1).expect("valid torus");
        let pes = pes.min(topo.nodes() - banks);
        let build = |metrics: MetricsConfig| {
            SystemConfig::builder()
                .topology(topo)
                .compute_pes(pes)
                .memory_banks(banks)
                .cycle_limit(50_000_000)
                .metrics(metrics)
                .build()
                .unwrap()
        };
        let off = System::run(&build(MetricsConfig::off()), &[], seeded_kernels(pes, seed, ops))
            .expect("unmetered run");
        let on = System::run(
            &build(MetricsConfig::every(interval)),
            &[],
            seeded_kernels(pes, seed, ops),
        )
        .expect("metered run");
        assert_identical("metered-vs-off", &on, &off);
        prop_assert!(off.metrics.is_none());
        let report = on.metrics.as_ref().expect("metered run attaches a report");
        prop_assert_eq!(report.end, on.cycles);
        for b in &report.breakdown {
            prop_assert_eq!(b.total(), on.cycles);
        }
    }
}

// ---------------------------------------------------------------------
// Renderer validity
// ---------------------------------------------------------------------

/// The heatmap of a real metered run is well-formed SVG with one cell
/// per directed link and a multi-window animation; the shared JSON row
/// emitter produces parseable JSON.
#[test]
fn renderers_emit_valid_artifacts() {
    let run = System::run(&metered(8, 24, 1), &[], seeded_kernels(8, 0x51AB, 12)).expect("run");
    let report = run.metrics.expect("report");
    assert!(report.windows.len() >= 2, "need a series to animate");

    let html = render_heatmap_html(&report, "metrics_equivalence");
    let cells = check_svg_well_formed(&html).expect("well-formed SVG");
    assert_eq!(cells, report.nodes() * 4, "one heatmap cell per directed link");
    assert!(html.contains("<animate"), "multi-window reports animate");

    let row = medea_bench::UtilizationRow {
        topology: "4x4".into(),
        label: "metrics_equivalence".into(),
        pes: 8,
        report,
    };
    let body = medea_bench::utilization_rows_json(&[row]);
    let doc = format!("{{\"rows\": [\n{body}]}}");
    medea::trace::json::validate(&doc).expect("utilization rows must be valid JSON");
    assert!(doc.contains("\"breakdown\""), "{doc}");
}
