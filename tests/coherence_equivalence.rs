//! Coherence-axis equivalence tests.
//!
//! The coherence knob ([`SystemConfigBuilder::coherence`]) must satisfy
//! three contracts, each pinned here:
//!
//! 1. **DII is still the paper, bit for bit.** With the directory
//!    machinery compiled in, the default (and the explicitly-selected)
//!    [`Coherence::Dii`] reproduces literal golden fingerprints — under
//!    the plain engine, under `run_traced` with a `NullSink`, and under
//!    live tracing — and reports exactly zero protocol traffic. The
//!    paper-4×4 workload pins in `golden_determinism.rs` cover the seed
//!    workloads; the pin here covers the sharing workload the coherence
//!    bench section runs.
//! 2. **The modes agree on memory.** A DII-disciplined kernel (flush
//!    after write, invalidate before read, inside critical sections) is
//!    architecturally correct under *both* modes, so the final memory it
//!    produces must be identical under both — on random tori, bank
//!    counts and round counts (property-based).
//! 3. **MESI composes with the tiled engine.** Directory traffic crosses
//!    tile boundaries like any other packets; every observable of a MESI
//!    run — including the new [`CoherenceStats`] — must be bit-identical
//!    at every thread count.
//!
//! [`SystemConfigBuilder::coherence`]: medea::core::SystemConfigBuilder::coherence
//! [`Coherence::Dii`]: medea::core::Coherence
//! [`CoherenceStats`]: medea::core::CoherenceStats

use medea::apps::sharing::{self, Discipline, SharingConfig};
use medea::core::system::RunResult;
use medea::core::{Coherence, CoherenceStats, SystemConfig, Topology};
use medea::trace::{EventClass, NullSink, RingSink, TraceConfig};
use proptest::prelude::*;

fn builder(pes: usize, mode: Coherence) -> medea::core::SystemConfigBuilder {
    SystemConfig::builder().compute_pes(pes).coherence(mode).cycle_limit(50_000_000)
}

/// The engine observables every variant must reproduce bit-identically.
type Fingerprint = (u64, u64, u64, Option<u64>);

fn fingerprint(r: &RunResult) -> Fingerprint {
    (r.cycles, r.fabric_delivered, r.fabric_deflections, r.fabric_max_latency)
}

// ---------------------------------------------------------------------
// 1. DII golden pins
// ---------------------------------------------------------------------

/// Literal fingerprint of the sharing workload (software discipline,
/// 4 ranks × 5 rounds) on the paper 4×4 torus under DII.
const PIN_SHARING_DII_4X4: Fingerprint = (1622, 584, 19, Some(4));

#[test]
fn dii_sharing_fingerprint_pinned_bit_for_bit() {
    let scfg = SharingConfig { rounds: 5 };
    for (name, cfg) in [
        (
            "default",
            SystemConfig::builder().compute_pes(4).cycle_limit(50_000_000).build().unwrap(),
        ),
        ("explicit dii", builder(4, Coherence::Dii).build().unwrap()),
    ] {
        let out = sharing::run(&cfg, &scfg).unwrap();
        assert_eq!(fingerprint(&out.run), PIN_SHARING_DII_4X4, "{name}: fingerprint drifted");
        assert_eq!(out.counters, vec![5; 4], "{name}: wrong final memory");
        assert_eq!(
            out.run.coherence,
            CoherenceStats::default(),
            "{name}: DII must report zero protocol traffic"
        );
    }
}

#[test]
fn dii_sharing_fingerprint_survives_tracing() {
    let scfg = SharingConfig { rounds: 5 };

    // NullSink: tracing compiled away.
    let cfg = builder(4, Coherence::Dii).build().unwrap();
    let off = sharing::run_traced(&cfg, &scfg, &mut NullSink).unwrap();
    assert_eq!(fingerprint(&off.run), PIN_SHARING_DII_4X4, "NullSink perturbed the engine");

    // Live tracing, everything captured.
    let traced = builder(4, Coherence::Dii).trace(TraceConfig::all()).build().unwrap();
    let mut sink = RingSink::new(1 << 20);
    let on = sharing::run_traced(&traced, &scfg, &mut sink).unwrap();
    assert_eq!(fingerprint(&on.run), PIN_SHARING_DII_4X4, "live tracing perturbed the engine");
    assert!(!sink.is_empty(), "a traced run must capture events");
}

// ---------------------------------------------------------------------
// 2. Mode equivalence on final memory (property-based)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The DII-disciplined sharing kernel produces identical final
    /// memory under software DII and under the MESI directory, on
    /// random tori, bank counts, rank counts and round counts.
    #[test]
    fn software_discipline_memory_identical_under_both_modes(
        dims in prop::sample::select(vec![(2u8, 2u8), (4, 2), (2, 4), (4, 4)]),
        banks in prop::sample::select(vec![1usize, 2, 4]),
        pes in 2usize..=5,
        rounds in 2usize..=5,
    ) {
        let topo = Topology::new(dims.0, dims.1).expect("valid torus");
        let banks = banks.min(if topo.nodes() >= 8 { 4 } else { 2 });
        let pes = pes.min(topo.nodes() - banks);
        let build = |mode: Coherence| {
            SystemConfig::builder()
                .topology(topo)
                .compute_pes(pes)
                .memory_banks(banks)
                .coherence(mode)
                .cycle_limit(50_000_000)
                .build()
                .expect("config")
        };
        let scfg = SharingConfig { rounds };
        let dii = sharing::run_disciplined(&build(Coherence::Dii), &scfg, Discipline::Software)
            .expect("dii run");
        let mesi =
            sharing::run_disciplined(&build(Coherence::MesiDirectory), &scfg, Discipline::Software)
                .expect("mesi run");
        prop_assert_eq!(&dii.counters, &vec![rounds as u32; pes]);
        prop_assert_eq!(&dii.counters, &mesi.counters);
        prop_assert_eq!(dii.run.coherence.protocol_messages(), 0);
        // The same cached fetches now flow through the directory.
        prop_assert!(mesi.run.coherence.gets + mesi.run.coherence.getm > 0);
    }
}

// ---------------------------------------------------------------------
// 3. MESI × tiled engine determinism
// ---------------------------------------------------------------------

/// Full numeric equality over everything a MESI run observes, the
/// coherence counters included.
fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(fingerprint(a), fingerprint(b), "{label}: fabric fingerprint");
    assert_eq!(a.fabric_latency, b.fabric_latency, "{label}: latency histogram");
    assert_eq!(a.coherence, b.coherence, "{label}: aggregate coherence stats");
    assert_eq!(a.pe.len(), b.pe.len(), "{label}: pe count");
    for (i, (pa, pb)) in a.pe.iter().zip(&b.pe).enumerate() {
        assert_eq!(pa.coherence, pb.coherence, "{label}: pe{i} coherence");
        assert_eq!(pa.cache.load_hits.get(), pb.cache.load_hits.get(), "{label}: pe{i} hits");
        assert_eq!(pa.cache.load_misses.get(), pb.cache.load_misses.get(), "{label}: pe{i} misses");
        assert_eq!(
            pa.bridge.transactions.get(),
            pb.bridge.transactions.get(),
            "{label}: pe{i} bridge"
        );
    }
    assert_eq!(a.banks.len(), b.banks.len(), "{label}: bank count");
    for (ba, bb) in a.banks.iter().zip(&b.banks) {
        assert_eq!(ba.coherence, bb.coherence, "{label}: bank {} coherence", ba.node);
        assert_eq!(
            ba.mpmmu.busy_cycles.get(),
            bb.mpmmu.busy_cycles.get(),
            "{label}: bank {} busy",
            ba.node
        );
    }
}

#[test]
fn mesi_tiled_engine_is_bit_identical_to_sequential() {
    let scfg = SharingConfig { rounds: 4 };
    let build = |threads: usize| {
        SystemConfig::builder()
            .compute_pes(6)
            .memory_banks(2)
            .coherence(Coherence::MesiDirectory)
            .cycle_limit(50_000_000)
            .host_threads(threads)
            .build()
            .unwrap()
    };
    let seq = sharing::run(&build(1), &scfg).unwrap();
    assert!(seq.run.coherence.protocol_messages() > 0, "workload must exercise the directory");
    for threads in [2, 3, 4] {
        let par = sharing::run(&build(threads), &scfg).unwrap();
        assert_eq!(par.counters, seq.counters, "threads={threads}: final memory");
        assert_identical(&format!("threads={threads}"), &seq.run, &par.run);
    }
}

#[test]
fn mesi_coherence_events_are_traced() {
    let cfg = builder(4, Coherence::MesiDirectory).trace(TraceConfig::all()).build().unwrap();
    let mut sink = RingSink::new(1 << 20);
    let out = sharing::run_traced(&cfg, &SharingConfig { rounds: 3 }, &mut sink).unwrap();
    assert!(out.run.coherence.invalidations_sent > 0);
    assert!(
        sink.iter().any(|t| t.event.class().intersects(EventClass::CACHE | EventClass::MEM)),
        "coherence traffic must surface as CACHE/MEM trace events"
    );
}
