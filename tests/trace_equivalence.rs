//! Property tests: tracing is observation only.
//!
//! For random small tori, PE counts and workload mixes, a run captured
//! into a `RingSink` (kernel span markers enabled) must produce a
//! `RunResult` numerically identical to the same configuration run
//! untraced — cycles, fabric counters, the full latency histogram, every
//! per-PE counter and every per-bank counter. The ring capacity is also
//! randomized so capture truncation can never feed back into the run.

use medea::core::api::PeApi;
use medea::core::system::{Kernel, RunResult, System};
use medea::core::{Empi, SystemConfig, Topology};
use medea::sim::rng::SplitMix64;
use medea::trace::{RingSink, TraceConfig};
use proptest::prelude::*;

/// A seeded, deadlock-free mixed workload: per-rank op soup (compute,
/// cached/uncached memory, coherence, lock-guarded counters), a ring
/// sendrecv exchange, then barrier + allreduce so every layer fires.
fn seeded_kernels(ranks: usize, seed: u64, ops: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                const LOCK: u32 = 0x40;
                const COUNTER: u32 = 0x44;
                let comm = Empi::new(api);
                let mut rng = SplitMix64::new(seed ^ (r as u64).wrapping_mul(0x9E37_79B9));
                let base = comm.private_base();
                for i in 0..ops {
                    match rng.next_u64() % 6 {
                        0 => comm.compute(1 + rng.next_u64() % 64),
                        1 => comm.store_u32(base + (i as u32 % 16) * 4, rng.next_u64() as u32),
                        2 => {
                            let _ = comm.load_u32(base + (i as u32 % 16) * 4);
                        }
                        3 => {
                            comm.flush_line(base);
                            comm.invalidate_line(base);
                        }
                        4 => {
                            comm.uncached_store_u32(0x80 + r as u32 * 4, i as u32);
                            let _ = comm.uncached_load_u32(0x80 + r as u32 * 4);
                        }
                        _ => {
                            comm.lock(LOCK);
                            let v = comm.uncached_load_u32(COUNTER);
                            comm.uncached_store_u32(COUNTER, v + 1);
                            comm.unlock(LOCK);
                        }
                    }
                }
                if comm.ranks() > 1 {
                    // Ring exchange through the duplex engine (safe for
                    // opposite-direction windowed sends).
                    let rank = comm.rank().index();
                    let ranks = comm.ranks();
                    let next = medea::sim::ids::Rank::new(((rank + 1) % ranks) as u8);
                    let prev = medea::sim::ids::Rank::new(((rank + ranks - 1) % ranks) as u8);
                    let payload: Vec<u32> = (0..8).map(|i| (rank * 100 + i) as u32).collect();
                    let got = comm.sendrecv(Some(next), &payload, Some(prev)).expect("ring");
                    assert_eq!(got[0] as usize, ((rank + ranks - 1) % ranks) * 100);
                }
                comm.barrier();
                let total = comm.allreduce(r as f64 + 0.25);
                let expect = (0..comm.ranks()).map(|k| k as f64 + 0.25).sum::<f64>();
                assert_eq!(total.to_bits(), expect.to_bits());
            }) as Kernel
        })
        .collect()
}

fn assert_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.fabric_delivered, b.fabric_delivered);
    assert_eq!(a.fabric_deflections, b.fabric_deflections);
    assert_eq!(a.fabric_mean_latency, b.fabric_mean_latency);
    assert_eq!(a.fabric_max_latency, b.fabric_max_latency);
    assert_eq!(a.fabric_latency, b.fabric_latency, "full latency histograms must match");
    assert_eq!(a.mpmmu.single_reads.get(), b.mpmmu.single_reads.get());
    assert_eq!(a.mpmmu.single_writes.get(), b.mpmmu.single_writes.get());
    assert_eq!(a.mpmmu.locks_granted.get(), b.mpmmu.locks_granted.get());
    assert_eq!(a.mpmmu.lock_nacks.get(), b.mpmmu.lock_nacks.get());
    assert_eq!(a.mpmmu.busy_cycles.get(), b.mpmmu.busy_cycles.get());
    for (pa, pb) in a.pe.iter().zip(&b.pe) {
        assert_eq!(pa.engine.requests.get(), pb.engine.requests.get());
        assert_eq!(pa.engine.compute_cycles.get(), pb.engine.compute_cycles.get());
        assert_eq!(pa.engine.mem_cycles.get(), pb.engine.mem_cycles.get());
        assert_eq!(pa.engine.send_cycles.get(), pb.engine.send_cycles.get());
        assert_eq!(pa.engine.recv_wait_cycles.get(), pb.engine.recv_wait_cycles.get());
        assert_eq!(pa.cache.load_hits.get(), pb.cache.load_hits.get());
        assert_eq!(pa.cache.load_misses.get(), pb.cache.load_misses.get());
        assert_eq!(pa.bridge.transactions.get(), pb.bridge.transactions.get());
        assert_eq!(pa.bridge.lock_retries.get(), pb.bridge.lock_retries.get());
        assert_eq!(pa.tie.flits_received.get(), pb.tie.flits_received.get());
    }
    for (ba, bb) in a.banks.iter().zip(&b.banks) {
        assert_eq!(ba.node, bb.node);
        assert_eq!(ba.mpmmu.single_writes.get(), bb.mpmmu.single_writes.get());
        assert_eq!(ba.mpmmu.busy_cycles.get(), bb.mpmmu.busy_cycles.get());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// RingSink-traced == untraced, numerically, on random small tori.
    #[test]
    fn ring_traced_run_is_bit_identical_to_untraced(
        dims in prop::sample::select(vec![(2u8, 2u8), (4, 2), (2, 4), (4, 4)]),
        pes in 2usize..=4,
        seed in any::<u64>(),
        ops in 4usize..=16,
        capacity_shift in 6usize..=20,
    ) {
        let topo = Topology::new(dims.0, dims.1).expect("valid torus");
        let pes = pes.min(topo.nodes() - 1);
        let cfg = SystemConfig::builder()
            .topology(topo)
            .compute_pes(pes)
            .cycle_limit(50_000_000)
            .trace(TraceConfig::all())
            .build()
            .expect("config");
        let untraced = System::run(&cfg, &[], seeded_kernels(pes, seed, ops)).expect("untraced");
        let mut sink = RingSink::new(1 << capacity_shift);
        let traced = System::run_traced(&cfg, &[], seeded_kernels(pes, seed, ops), &mut sink)
            .expect("traced");
        prop_assert!(!sink.is_empty(), "traced run captured nothing");
        assert_identical(&traced, &untraced);
    }
}
