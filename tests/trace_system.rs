//! Full-system integration tests for the medea-trace subsystem: a mixed
//! workload (messages + cached/uncached shared memory + locks +
//! collectives) traced end-to-end must light up all four event classes,
//! export to syntactically valid Chrome-trace JSON and CSV, and yield
//! sensible analytics — while leaving every architectural observable of
//! the run untouched.

use medea::apps::workloads::trace_mix_kernels;
use medea::core::system::{Kernel, RunResult, System};
use medea::core::SystemConfig;
use medea::trace::{
    chrome, csv, json, EventClass, KernelOp, RingSink, TimedEvent, TraceAnalysis, TraceConfig,
    TraceEvent,
};

fn traced_cfg(pes: usize) -> SystemConfig {
    SystemConfig::builder()
        .compute_pes(pes)
        .cycle_limit(50_000_000)
        .trace(TraceConfig::all())
        .build()
        .unwrap()
}

/// The shared every-layer workload (`apps::workloads::trace_mix_kernels`,
/// the same kernels the CI `trace_json --workload mixed` artifact runs),
/// with 3 lock rounds per rank.
fn mixed_kernels(ranks: usize) -> Vec<Kernel> {
    trace_mix_kernels(ranks, 3)
}

fn run_traced_mixed(pes: usize, capacity: usize) -> (RunResult, RingSink) {
    let mut sink = RingSink::new(capacity);
    let result =
        System::run_traced(&traced_cfg(pes), &[], mixed_kernels(pes), &mut sink).expect("run");
    (result, sink)
}

#[test]
fn mixed_workload_emits_all_four_event_classes() {
    let (result, sink) = run_traced_mixed(4, 1 << 20);
    assert_eq!(sink.dropped(), 0, "capacity must hold the whole mixed run");
    let events = sink.to_vec();
    for class in [EventClass::NOC, EventClass::CACHE, EventClass::MEM, EventClass::KERNEL] {
        let n = events.iter().filter(|t| t.event.class().intersects(class)).count();
        assert!(n > 0, "class {class:?} captured no events");
    }
    // Spot-check the cross-layer stories the classes tell.
    assert!(
        events.iter().any(|t| matches!(t.event, TraceEvent::LockContended { .. })),
        "four ranks hammering one lock must contend"
    );
    assert!(
        events
            .iter()
            .any(|t| matches!(t.event, TraceEvent::SpanBegin { op: KernelOp::Allreduce, .. })),
        "eMPI collective spans must be marked"
    );
    assert!(
        events.iter().any(|t| matches!(t.event, TraceEvent::FlitDelivered { .. })),
        "NoC deliveries must be traced"
    );
    // Timestamps are bounded by the run and non-decreasing per capture
    // order is not guaranteed across nodes, but bounds are.
    assert!(events.iter().all(|t| t.at <= result.cycles));
}

#[test]
fn traced_run_matches_untraced_run_bit_for_bit() {
    let (traced, _sink) = run_traced_mixed(4, 1 << 20);
    let untraced = System::run(&traced_cfg(4), &[], mixed_kernels(4)).expect("untraced run");
    assert_eq!(traced.cycles, untraced.cycles);
    assert_eq!(traced.fabric_delivered, untraced.fabric_delivered);
    assert_eq!(traced.fabric_deflections, untraced.fabric_deflections);
    assert_eq!(traced.fabric_mean_latency, untraced.fabric_mean_latency);
    assert_eq!(traced.fabric_latency, untraced.fabric_latency);
    assert_eq!(traced.mpmmu.single_writes.get(), untraced.mpmmu.single_writes.get());
    assert_eq!(traced.mpmmu.locks_granted.get(), untraced.mpmmu.locks_granted.get());
    for (a, b) in traced.pe.iter().zip(&untraced.pe) {
        assert_eq!(a.engine.requests.get(), b.engine.requests.get());
        assert_eq!(a.engine.compute_cycles.get(), b.engine.compute_cycles.get());
        assert_eq!(a.cache.load_hits.get(), b.cache.load_hits.get());
        assert_eq!(a.bridge.transactions.get(), b.bridge.transactions.get());
    }
}

#[test]
fn chrome_export_is_valid_and_has_per_node_tracks() {
    let (_, sink) = run_traced_mixed(4, 1 << 20);
    let events = sink.to_vec();
    let doc = chrome::to_chrome_json(&events, |node| format!("node {node}"));
    json::validate(&doc).expect("chrome export must parse");
    // One metadata record per distinct node: 4 PEs + the MPMMU at node 0.
    let tracks = doc.matches("\"thread_name\"").count();
    assert!(tracks >= 5, "expected >=5 node tracks, got {tracks}");
    // Spans arrive as B/E pairs.
    assert!(doc.contains("\"ph\":\"B\"") && doc.contains("\"ph\":\"E\""));
    // The link-occupancy counter series exists.
    assert!(doc.contains("links-busy"));
}

#[test]
fn csv_export_covers_all_classes() {
    let (_, sink) = run_traced_mixed(3, 1 << 20);
    let csv_doc = csv::to_csv(&sink.to_vec());
    let mut lines = csv_doc.lines();
    assert_eq!(lines.next(), Some("cycle,class,event,node,kind,src,addr,value"));
    for needle in [",noc,", ",cache,", ",mem,", ",kernel,"] {
        assert!(csv_doc.contains(needle), "csv missing {needle}");
    }
}

#[test]
fn analysis_reports_contention_and_spans() {
    let (result, sink) = run_traced_mixed(4, 1 << 20);
    let a = TraceAnalysis::from_events(&sink.to_vec());
    assert_eq!(a.lock_acquires, result.mpmmu.locks_granted.get());
    assert!(a.contended_acquires > 0, "lock contention must be visible");
    assert!(a.lock_contention_cycles > 0);
    assert!(a.delivered > 0 && a.injected >= a.delivered);
    assert!(a.peak_link_load().is_some());
    let barrier = a.spans.iter().find(|(op, _, _)| *op == KernelOp::Barrier);
    assert_eq!(barrier.map(|(_, count, _)| *count), Some(4), "one barrier span per rank");
}

#[test]
fn class_filtered_sink_captures_only_selected_classes() {
    let mut sink = RingSink::with_classes(1 << 20, EventClass::MEM);
    System::run_traced(&traced_cfg(3), &[], mixed_kernels(3), &mut sink).expect("run");
    let events = sink.to_vec();
    assert!(!events.is_empty());
    assert!(events.iter().all(|t| t.event.class().intersects(EventClass::MEM)));
}

#[test]
fn ring_truncation_keeps_newest_events_and_counts_drops() {
    let (result, full) = run_traced_mixed(3, 1 << 20);
    let total = full.len();
    let cap = total / 4;
    let (_, small) = run_traced_mixed(3, cap);
    assert_eq!(small.len(), cap);
    assert_eq!(small.dropped() as usize, total - cap);
    // The survivors are the *newest* events: their first timestamp is at
    // or after the full capture's timestamp at the same cut.
    let full_events: Vec<TimedEvent> = full.to_vec();
    let first_kept = small.to_vec()[0].at;
    assert_eq!(first_kept, full_events[total - cap].at);
    assert!(small.to_vec().last().unwrap().at <= result.cycles);
}
