//! Property + golden tests: fault injection is pay-for-what-you-inject.
//!
//! Two guarantees pin the zero-cost claim of `medea-fault`:
//!
//! * **Compile-time**: `System::run` instantiates the engine with
//!   `NullInjector`, so every fault hook monomorphizes away — the golden
//!   paper-4×4 fingerprints (literal values carried from
//!   `tests/golden_determinism.rs`) must hold bit-for-bit with the fault
//!   machinery and the resilient eMPI protocol compiled into the binary.
//! * **Run-time**: a live `ScheduledInjector` whose schedule is all-zero
//!   (`FaultConfig::default()` with any seed) must also be observation
//!   free — for random tori, PE counts and workload mixes, a rate-0
//!   faulted run reproduces the unfaulted `RunResult` numerically,
//!   counter for counter.

use medea::core::api::PeApi;
use medea::core::system::{Kernel, RunResult, System};
use medea::core::{Empi, FaultConfig, ScheduledInjector, SystemConfig, Topology};
use medea::sim::rng::SplitMix64;
use medea::trace::NullSink;
use proptest::prelude::*;

/// A seeded, deadlock-free mixed workload (same shape as the trace
/// equivalence suite): per-rank op soup, a ring sendrecv exchange, then
/// barrier + allreduce so every layer fires.
fn seeded_kernels(ranks: usize, seed: u64, ops: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                const LOCK: u32 = 0x40;
                const COUNTER: u32 = 0x44;
                let comm = Empi::new(api);
                let mut rng = SplitMix64::new(seed ^ (r as u64).wrapping_mul(0x9E37_79B9));
                let base = comm.private_base();
                for i in 0..ops {
                    match rng.next_u64() % 6 {
                        0 => comm.compute(1 + rng.next_u64() % 64),
                        1 => comm.store_u32(base + (i as u32 % 16) * 4, rng.next_u64() as u32),
                        2 => {
                            let _ = comm.load_u32(base + (i as u32 % 16) * 4);
                        }
                        3 => {
                            comm.flush_line(base);
                            comm.invalidate_line(base);
                        }
                        4 => {
                            comm.uncached_store_u32(0x80 + r as u32 * 4, i as u32);
                            let _ = comm.uncached_load_u32(0x80 + r as u32 * 4);
                        }
                        _ => {
                            comm.lock(LOCK);
                            let v = comm.uncached_load_u32(COUNTER);
                            comm.uncached_store_u32(COUNTER, v + 1);
                            comm.unlock(LOCK);
                        }
                    }
                }
                if comm.ranks() > 1 {
                    let rank = comm.rank().index();
                    let ranks = comm.ranks();
                    let next = medea::sim::ids::Rank::new(((rank + 1) % ranks) as u8);
                    let prev = medea::sim::ids::Rank::new(((rank + ranks - 1) % ranks) as u8);
                    let payload: Vec<u32> = (0..8).map(|i| (rank * 100 + i) as u32).collect();
                    let got = comm.sendrecv(Some(next), &payload, Some(prev)).expect("ring");
                    assert_eq!(got[0] as usize, ((rank + ranks - 1) % ranks) * 100);
                }
                comm.barrier();
                let total = comm.allreduce(r as f64 + 0.25);
                let expect = (0..comm.ranks()).map(|k| k as f64 + 0.25).sum::<f64>();
                assert_eq!(total.to_bits(), expect.to_bits());
            }) as Kernel
        })
        .collect()
}

fn assert_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.fabric_delivered, b.fabric_delivered);
    assert_eq!(a.fabric_deflections, b.fabric_deflections);
    assert_eq!(a.fabric_reroutes, b.fabric_reroutes);
    assert_eq!(a.fabric_mean_latency, b.fabric_mean_latency);
    assert_eq!(a.fabric_max_latency, b.fabric_max_latency);
    assert_eq!(a.fabric_latency, b.fabric_latency, "full latency histograms must match");
    assert_eq!(a.mpmmu.single_reads.get(), b.mpmmu.single_reads.get());
    assert_eq!(a.mpmmu.single_writes.get(), b.mpmmu.single_writes.get());
    assert_eq!(a.mpmmu.locks_granted.get(), b.mpmmu.locks_granted.get());
    assert_eq!(a.mpmmu.lock_nacks.get(), b.mpmmu.lock_nacks.get());
    assert_eq!(a.mpmmu.busy_cycles.get(), b.mpmmu.busy_cycles.get());
    assert_eq!(a.mpmmu.protocol_drops.get(), b.mpmmu.protocol_drops.get());
    for (pa, pb) in a.pe.iter().zip(&b.pe) {
        assert_eq!(pa.engine.requests.get(), pb.engine.requests.get());
        assert_eq!(pa.engine.compute_cycles.get(), pb.engine.compute_cycles.get());
        assert_eq!(pa.engine.mem_cycles.get(), pb.engine.mem_cycles.get());
        assert_eq!(pa.engine.send_cycles.get(), pb.engine.send_cycles.get());
        assert_eq!(pa.engine.recv_wait_cycles.get(), pb.engine.recv_wait_cycles.get());
        assert_eq!(pa.engine.retransmits.get(), pb.engine.retransmits.get());
        assert_eq!(pa.engine.nacks_sent.get(), pb.engine.nacks_sent.get());
        assert_eq!(pa.cache.load_hits.get(), pb.cache.load_hits.get());
        assert_eq!(pa.cache.load_misses.get(), pb.cache.load_misses.get());
        assert_eq!(pa.bridge.transactions.get(), pb.bridge.transactions.get());
        assert_eq!(pa.bridge.retries.get(), pb.bridge.retries.get());
        assert_eq!(pa.tie.flits_received.get(), pb.tie.flits_received.get());
        assert_eq!(pa.tie.corrupt_flits.get(), pb.tie.corrupt_flits.get());
    }
    for (ba, bb) in a.banks.iter().zip(&b.banks) {
        assert_eq!(ba.node, bb.node);
        assert_eq!(ba.mpmmu.single_writes.get(), bb.mpmmu.single_writes.get());
        assert_eq!(ba.mpmmu.busy_cycles.get(), bb.mpmmu.busy_cycles.get());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A rate-0 `ScheduledInjector` (ACTIVE = true, schedule inert) is
    /// numerically invisible on random small tori.
    #[test]
    fn rate_zero_injector_is_bit_identical_to_null(
        dims in prop::sample::select(vec![(2u8, 2u8), (4, 2), (2, 4), (4, 4)]),
        pes in 2usize..=4,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        ops in 4usize..=16,
    ) {
        let topo = Topology::new(dims.0, dims.1).expect("valid torus");
        let pes = pes.min(topo.nodes() - 1);
        let cfg = SystemConfig::builder()
            .topology(topo)
            .compute_pes(pes)
            .cycle_limit(50_000_000)
            .build()
            .expect("config");
        let clean = System::run(&cfg, &[], seeded_kernels(pes, seed, ops)).expect("clean");
        let schedule = FaultConfig { seed: fault_seed, ..FaultConfig::default() };
        prop_assert!(schedule.is_inert());
        let mut injector = ScheduledInjector::new(schedule);
        let faulted = System::run_faulted(
            &cfg,
            &[],
            seeded_kernels(pes, seed, ops),
            &mut NullSink,
            &mut injector,
        )
        .expect("rate-0 faulted");
        assert_identical(&faulted, &clean);
        prop_assert_eq!(faulted.fault.total(), 0, "inert schedule must inject nothing");
    }
}

// ---- golden paper-4×4 pins (literals carried from golden_determinism) ----

type Fingerprint = (u64, u64, u64, Option<u64>);

fn fingerprint(r: &RunResult) -> Fingerprint {
    (r.cycles, r.fabric_delivered, r.fabric_deflections, r.fabric_max_latency)
}

fn cfg(pes: usize) -> SystemConfig {
    SystemConfig::builder().compute_pes(pes).cycle_limit(50_000_000).build().unwrap()
}

/// One-word ping-pong over raw TIE messages, 40 round trips — must pin
/// (320, 80, 0, Some(1)) exactly as before the fault/resilience work.
fn pingpong_kernels() -> Vec<Kernel> {
    use medea::sim::ids::Rank;
    let ping: Kernel = Box::new(|api: PeApi| {
        for i in 1..=40u32 {
            api.send_to_rank(Rank::new(1), &[i]);
            let back = api.recv_from_rank(Rank::new(1));
            assert_eq!(back[0], i);
        }
    });
    let pong: Kernel = Box::new(|api: PeApi| {
        for _ in 1..=40u32 {
            let v = api.recv_from_rank(Rank::new(0));
            api.send_to_rank(Rank::new(0), &v);
        }
    });
    vec![ping, pong]
}

/// Every rank streams a message to rank 0 — the deflection-heavy pin
/// (695, 343, 5081, Some(187)).
fn gather_kernels(ranks: usize) -> Vec<Kernel> {
    use medea::sim::ids::Rank;
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                if r == 0 {
                    for src in 1..comm.ranks() {
                        let got = comm.recv(Rank::new(src as u8));
                        assert_eq!(got.len(), 40);
                    }
                } else {
                    let payload: Vec<u32> = (0..40).map(|i| (r * 1000 + i) as u32).collect();
                    comm.send(Rank::new(0), &payload);
                }
            }) as Kernel
        })
        .collect()
}

const PIN_PINGPONG: Fingerprint = (320, 80, 0, Some(1));
const PIN_GATHER: Fingerprint = (695, 343, 5081, Some(187));

/// One pinned workload: name, kernel factory, PE count, expected pin.
type PinnedCase = (&'static str, fn() -> Vec<Kernel>, usize, Fingerprint);

/// The paper fingerprints survive both the `NullInjector` fast path and a
/// live rate-0 `ScheduledInjector`, with the retransmission protocol
/// compiled in (but idle: resilience defaults off).
#[test]
fn golden_fingerprints_pinned_under_both_injectors() {
    let pins: [PinnedCase; 2] = [
        ("pingpong", pingpong_kernels, 2, PIN_PINGPONG),
        ("gather", || gather_kernels(8), 8, PIN_GATHER),
    ];
    for (name, kernels, pes, pin) in pins {
        let null_run = System::run(&cfg(pes), &[], kernels()).expect(name);
        assert_eq!(fingerprint(&null_run), pin, "{name}: NullInjector drifted the pin");
        assert_eq!(null_run.fault.total(), 0);
        assert_eq!(null_run.retransmits(), 0, "{name}: idle resilience must not retransmit");

        let mut injector = ScheduledInjector::new(FaultConfig { seed: 99, ..Default::default() });
        let zero_rate =
            System::run_faulted(&cfg(pes), &[], kernels(), &mut NullSink, &mut injector)
                .expect(name);
        assert_eq!(fingerprint(&zero_rate), pin, "{name}: rate-0 injector drifted the pin");
        assert_eq!(zero_rate.fault.total(), 0);
    }
}
