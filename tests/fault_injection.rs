//! Directed fault-injection tests: the resilience machinery actually
//! recovers, and hangs die structured deaths instead of silent ones.
//!
//! * A torus link killed mid-run under an 8×8 Jacobi solve with flit
//!   corruption raining on the message layer: the run completes, the
//!   grid validates bit-exactly against the sequential reference, and
//!   the recovery counters (deflection reroutes, eMPI retransmissions)
//!   are nonzero — the faults really happened and were really healed.
//! * A receiver whose peer never sends, under resilient delivery: the
//!   retransmission protocol NACK-spins (traffic flows, so classic
//!   deadlock detection cannot fire) until the progress watchdog
//!   converts the livelock into [`RunError::Watchdog`] with per-PE
//!   diagnostics.
//! * The cycle-limit error carries the same per-PE blocked-state detail
//!   (satellite of the same PR).

use medea::apps::jacobi::{self, JacobiConfig, JacobiVariant};
use medea::core::api::PeApi;
use medea::core::system::{Kernel, System};
use medea::core::{
    DeadLink, Empi, FaultConfig, ResilienceConfig, RunError, ScheduledInjector, SystemConfig,
    Topology,
};
use medea::sim::ids::Rank;
use medea::trace::NullSink;

/// Dead link at cycle 400 on the bank node's east port — right in the
/// middle of the memory traffic — plus a 0.5% Message-flit corruption
/// rate, under a validating 8×8-torus Jacobi solve with resilient
/// delivery enabled.
#[test]
fn jacobi_8x8_survives_dead_link_and_corruption() {
    let sys = SystemConfig::builder()
        .topology(Topology::new(8, 8).expect("8x8 torus"))
        .compute_pes(16)
        .cycle_limit(200_000_000)
        .resilience(ResilienceConfig {
            empi_retransmit: true,
            empi_timeout: 10_000,
            watchdog_cycles: 5_000_000,
            ..ResilienceConfig::off()
        })
        .build()
        .expect("16-PE resilient configuration");
    let jcfg = JacobiConfig::new(20, JacobiVariant::HybridFullMp)
        .with_warmup_iters(0)
        .with_measured_iters(2)
        .with_validation();
    let schedule =
        FaultConfig { seed: 0xFA_117, flit_corrupt_ppm: 5_000, ..FaultConfig::default() }
            .kill_link(DeadLink { node: 0, dir: 1, at: 400 });
    let mut injector = ScheduledInjector::new(schedule);
    let outcome =
        jacobi::run_faulted(&sys, &jcfg, &mut NullSink, &mut injector).expect("faulted Jacobi");

    // The faults really fired...
    assert_eq!(outcome.run.fault.links_killed, 1, "scheduled link kill must fire");
    assert!(outcome.run.fault.flits_corrupted > 0, "corruption rate never rolled a hit");
    // ...and were really recovered from.
    assert!(outcome.run.fabric_reroutes > 0, "dead link must force reroutes");
    assert!(
        outcome.run.retransmits() > 0,
        "corrupted chunks must be retransmitted (corrupted {})",
        outcome.run.fault.flits_corrupted
    );
    assert!(outcome.run.nacks_sent() > 0, "recovery must go through receiver NACKs");
    // Numerically perfect despite the abuse: every recovered chunk is
    // bit-exact, so the grid matches the sequential reference.
    jacobi::validate_against_reference(&jcfg, &outcome).expect("grid must validate bit-exactly");
}

/// A dead link alone (no corruption, resilience off) is absorbed by
/// deflection routing with zero protocol involvement: the run completes
/// and only the reroute counter moves.
#[test]
fn dead_link_alone_is_transparent_to_the_protocol() {
    let sys = SystemConfig::builder()
        .topology(Topology::new(4, 4).expect("4x4 torus"))
        .compute_pes(8)
        .cycle_limit(50_000_000)
        .build()
        .expect("configuration");
    let kernels: Vec<Kernel> = (0..8)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                if r == 0 {
                    for src in 1..comm.ranks() {
                        let got = comm.recv(Rank::new(src as u8));
                        assert_eq!(got.len(), 40, "payload length survives the dead link");
                        assert_eq!(got[0], src as u32 * 1000);
                    }
                } else {
                    let payload: Vec<u32> = (0..40).map(|i| (r * 1000 + i) as u32).collect();
                    comm.send(Rank::new(0), &payload);
                }
            }) as Kernel
        })
        .collect();
    let schedule = FaultConfig { seed: 7, ..FaultConfig::default() }.kill_link(DeadLink {
        node: 0,
        dir: 1,
        at: 50,
    });
    let mut injector = ScheduledInjector::new(schedule);
    let run = System::run_faulted(&sys, &[], kernels, &mut NullSink, &mut injector)
        .expect("run with dead link");
    assert_eq!(run.fault.links_killed, 1);
    assert!(run.fabric_reroutes > 0, "traffic through node 0 must hit the dead link");
    assert_eq!(run.retransmits(), 0, "lossless reroute needs no retransmission");
    assert_eq!(run.fault.flits_corrupted, 0);
}

/// Resilient delivery turns a missing sender into a NACK livelock —
/// traffic keeps flowing, so deadlock detection can never fire — and the
/// progress watchdog converts it into a structured error naming the
/// blocked rank.
#[test]
fn watchdog_converts_retransmission_livelock_into_structured_error() {
    let sys = SystemConfig::builder()
        .compute_pes(2)
        .cycle_limit(50_000_000)
        .resilience(ResilienceConfig {
            empi_retransmit: true,
            empi_timeout: 1_000,
            watchdog_cycles: 40_000,
            ..ResilienceConfig::off()
        })
        .build()
        .expect("resilient configuration");
    let kernels: Vec<Kernel> = vec![
        Box::new(|api: PeApi| {
            let comm = Empi::new(api);
            let _ = comm.recv(Rank::new(1)); // peer never sends
        }),
        Box::new(|api: PeApi| {
            let comm = Empi::new(api);
            comm.compute(10); // finish without sending
        }),
    ];
    let err = System::run(&sys, &[], kernels).expect_err("must not hang silently");
    match &err {
        RunError::Watchdog { at, detail } => {
            assert!(*at >= 40_000, "watchdog fired inside its own window: at {at}");
            assert!(*at < 50_000_000, "watchdog must fire well before the cycle limit");
            assert!(detail.contains("rank 0"), "detail must name the stuck rank: {detail}");
        }
        other => panic!("expected Watchdog, got {other}"),
    }
}

/// Without the watchdog the same livelock runs into the cycle limit —
/// whose error now carries the per-PE diagnostics too (satellite: richer
/// cycle-limit reporting).
#[test]
fn cycle_limit_error_reports_per_pe_state() {
    let sys = SystemConfig::builder()
        .compute_pes(2)
        .cycle_limit(60_000)
        .resilience(ResilienceConfig {
            empi_retransmit: true,
            empi_timeout: 1_000,
            ..ResilienceConfig::off()
        })
        .build()
        .expect("resilient configuration, watchdog off");
    let kernels: Vec<Kernel> = vec![
        Box::new(|api: PeApi| {
            let comm = Empi::new(api);
            let _ = comm.recv(Rank::new(1));
        }),
        Box::new(|api: PeApi| {
            let comm = Empi::new(api);
            comm.compute(10);
        }),
    ];
    let err = System::run(&sys, &[], kernels).expect_err("cycle limit must trip");
    match &err {
        RunError::CycleLimit { limit, detail } => {
            assert_eq!(*limit, 60_000);
            assert!(detail.contains("rank 0"), "detail must name the live rank: {detail}");
            assert!(detail.contains("sent"), "detail must carry traffic counters: {detail}");
        }
        other => panic!("expected CycleLimit, got {other}"),
    }
}

/// The watchdog must NOT fire on a healthy long-running workload: heavy
/// compute with sparse traffic stays under a tight watchdog because
/// fast-forward jumps reset the window.
#[test]
fn watchdog_tolerates_long_healthy_compute() {
    let sys = SystemConfig::builder()
        .compute_pes(2)
        .cycle_limit(50_000_000)
        .resilience(ResilienceConfig {
            empi_retransmit: true,
            empi_timeout: 1_000,
            watchdog_cycles: 20_000,
            ..ResilienceConfig::off()
        })
        .build()
        .expect("resilient configuration");
    let kernels: Vec<Kernel> = vec![
        Box::new(|api: PeApi| {
            let comm = Empi::new(api);
            comm.compute(300_000); // 15 watchdog windows of pure compute
            comm.send(Rank::new(1), &[1, 2, 3]);
        }),
        Box::new(|api: PeApi| {
            let comm = Empi::new(api);
            let got = comm.recv(Rank::new(0));
            assert_eq!(got, vec![1, 2, 3]);
        }),
    ];
    let run = System::run(&sys, &[], kernels).expect("healthy run must pass the watchdog");
    assert!(run.cycles >= 300_000);
}
