//! Golden determinism tests for the cycle engine's hot path.
//!
//! Committed *before* the zero-allocation/activity-scheduled rewrite of
//! the router, network and cycle engine: these tests pin the observable
//! behavior of full-system runs — exact cycle counts, delivered-flit
//! counts and deflection counts — so engine work is provably
//! behavior-preserving. Any optimization that changes one of these
//! numbers is a functional change, not an optimization.
//!
//! The workloads run through the `Empi` communicator with its default
//! `Linear` algorithm, which reproduces the seed's rank-0-centred message
//! patterns — keeping `Linear` the default is precisely what pins the
//! paper-4×4 fingerprints. The tree algorithms get their own stability
//! pins below.

use medea::apps::hotspot::{self, HotspotConfig};
use medea::apps::jacobi::{self, JacobiConfig, JacobiVariant};
use medea::core::api::PeApi;
use medea::core::system::{Kernel, RunResult, System};
use medea::core::{CollectiveAlgo, Empi, SystemConfig, Topology};
use medea::sim::ids::Rank;
use medea::trace::{NullSink, RingSink, TraceConfig};

fn cfg(pes: usize) -> SystemConfig {
    SystemConfig::builder().compute_pes(pes).cycle_limit(50_000_000).build().unwrap()
}

/// Like [`cfg`] but with the bank count written out explicitly.
fn cfg_banked(pes: usize, banks: usize) -> SystemConfig {
    SystemConfig::builder()
        .compute_pes(pes)
        .memory_banks(banks)
        .cycle_limit(50_000_000)
        .build()
        .unwrap()
}

/// The fields of [`RunResult`] every engine variant must reproduce
/// bit-identically.
type Fingerprint = (u64, u64, u64, Option<u64>);

/// A pinned workload: name, kernel factory, PE count, expected print.
type PinnedWorkload = (&'static str, fn() -> Vec<Kernel>, usize, Fingerprint);

fn fingerprint(r: &RunResult) -> Fingerprint {
    (r.cycles, r.fabric_delivered, r.fabric_deflections, r.fabric_max_latency)
}

/// One-word ping-pong over raw TIE messages, 40 round trips.
fn pingpong_kernels() -> Vec<Kernel> {
    let ping: Kernel = Box::new(|api: PeApi| {
        for i in 1..=40u32 {
            api.send_to_rank(Rank::new(1), &[i]);
            let back = api.recv_from_rank(Rank::new(1));
            assert_eq!(back[0], i);
        }
    });
    let pong: Kernel = Box::new(|api: PeApi| {
        for _ in 1..=40u32 {
            let v = api.recv_from_rank(Rank::new(0));
            api.send_to_rank(Rank::new(0), &v);
        }
    });
    vec![ping, pong]
}

/// Gather-to-root + broadcast all-reduce, hand-rolled on the
/// communicator's point-to-point ops with a compute phase so timed stalls
/// and traffic interleave. Deliberately NOT `Empi::allreduce`: this is
/// the seed's exact call sequence (barrier, then per-rank send/recv
/// pairs), kept verbatim so the fingerprint pins the same behavior the
/// pre-communicator engine produced. The library collectives get their
/// own per-algorithm fingerprints below.
fn reduce_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                comm.compute(50 + 137 * r as u64);
                comm.barrier();
                let mine = r as f64 + 0.5;
                let total = if comm.rank().is_master() {
                    let mut acc = mine;
                    for src in 1..comm.ranks() {
                        acc = comm.fadd(acc, comm.recv_f64(Rank::new(src as u8))[0]);
                    }
                    for dst in 1..comm.ranks() {
                        comm.send_f64(Rank::new(dst as u8), &[acc]);
                    }
                    acc
                } else {
                    comm.send_f64(Rank::new(0), &[mine]);
                    comm.recv_f64(Rank::new(0))[0]
                };
                let expect = (0..comm.ranks()).map(|k| k as f64 + 0.5).sum::<f64>();
                assert_eq!(total.to_bits(), expect.to_bits());
            }) as Kernel
        })
        .collect()
}

/// The same reduction through the library collective — the surface the
/// per-algorithm fingerprint test pins.
fn allreduce_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                comm.compute(50 + 137 * r as u64);
                comm.barrier();
                let total = comm.allreduce(r as f64 + 0.5);
                let expect = (0..comm.ranks()).map(|k| k as f64 + 0.5).sum::<f64>();
                assert_eq!(total.to_bits(), expect.to_bits());
            }) as Kernel
        })
        .collect()
}

/// Every rank simultaneously streams a message to rank 0 — heavy
/// contention on the torus and the ejection channel, so the deflection
/// path is actually exercised.
fn gather_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                if r == 0 {
                    for src in 1..comm.ranks() {
                        let got = comm.recv(Rank::new(src as u8));
                        assert_eq!(got.len(), 40);
                    }
                } else {
                    let payload: Vec<u32> = (0..40).map(|i| (r * 1000 + i) as u32).collect();
                    comm.send(Rank::new(0), &payload);
                }
            }) as Kernel
        })
        .collect()
}

/// Shared-memory traffic through locks, uncached accesses and flushes —
/// the MPMMU-heavy counterpart of the message workloads above.
fn sharedmem_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                const COUNTER: u32 = 0x100;
                const LOCK: u32 = 0x200;
                for _ in 0..6 {
                    api.lock(LOCK);
                    let v = api.uncached_load_u32(COUNTER);
                    api.uncached_store_u32(COUNTER, v + 1);
                    api.unlock(LOCK);
                }
                api.store_f64(api.private_base(), r as f64);
                api.flush_line(api.private_base());
            }) as Kernel
        })
        .collect()
}

/// The four pinned paper-4×4 workloads with their literal fingerprints
/// (captured from the pre-bank single-MPMMU engine).
fn paper_pins() -> [PinnedWorkload; 4] {
    [
        ("pingpong", || pingpong_kernels(), 2, (320, 80, 0, Some(1))),
        ("reduce", || reduce_kernels(6), 6, (960, 50, 0, Some(3))),
        ("gather", || gather_kernels(8), 8, (695, 343, 5081, Some(187))),
        ("sharedmem", || sharedmem_kernels(5), 5, (2263, 704, 17, Some(5))),
    ]
}

/// The paper-4×4 fingerprints, pinned as literal values captured from the
/// pre-bank single-MPMMU engine. The banked refactor (and any future
/// engine work) must reproduce them bit-for-bit with the default
/// configuration AND with an explicit `memory_banks(1)` — the single-bank
/// system IS the paper's system, not an approximation of it.
#[test]
fn paper_4x4_fingerprints_pinned_bit_for_bit() {
    for (name, kernels, pes, pin) in paper_pins() {
        let default_run = System::run(&cfg(pes), &[], kernels()).expect(name);
        assert_eq!(fingerprint(&default_run), pin, "{name}: default configuration drifted");
        let one_bank = System::run(&cfg_banked(pes, 1), &[], kernels()).expect(name);
        assert_eq!(
            fingerprint(&one_bank),
            pin,
            "{name}: memory_banks(1) must reproduce the paper fingerprint"
        );
    }
    // The shared-memory pin extends to the MPMMU counters themselves.
    let run = System::run(&cfg_banked(5, 1), &[], sharedmem_kernels(5)).unwrap();
    assert_eq!(run.mpmmu.single_writes.get(), 30);
    assert_eq!(run.mpmmu.locks_granted.get(), 30);
    assert_eq!(run.banks.len(), 1);
}

/// Tracing must be free: every paper-4×4 fingerprint is reproduced
/// bit-for-bit by `run_traced` with a `NullSink` (tracing compiled away)
/// AND with a live `RingSink` on a fully trace-enabled configuration
/// (kernel span markers included). Events are observations, never
/// actors.
#[test]
fn tracing_reproduces_paper_fingerprints_bit_for_bit() {
    for (name, kernels, pes, pin) in paper_pins() {
        let off = System::run_traced(&cfg(pes), &[], kernels(), &mut NullSink).expect(name);
        assert_eq!(fingerprint(&off), pin, "{name}: NullSink perturbed the engine");

        let traced_cfg = SystemConfig::builder()
            .compute_pes(pes)
            .cycle_limit(50_000_000)
            .trace(TraceConfig::all())
            .build()
            .unwrap();
        let mut sink = RingSink::new(1 << 20);
        let on = System::run_traced(&traced_cfg, &[], kernels(), &mut sink).expect(name);
        assert_eq!(fingerprint(&on), pin, "{name}: live tracing perturbed the engine");
        assert!(!sink.is_empty(), "{name}: a traced run must capture events");

        // And a trace-enabled config run *untraced* is unperturbed too
        // (markers flow, cost zero cycles, and are discarded).
        let markers_only = System::run(&traced_cfg, &[], kernels()).expect(name);
        assert_eq!(fingerprint(&markers_only), pin, "{name}: span markers cost cycles");
    }
}

#[test]
fn two_bank_8x8_fingerprint_pinned_bit_for_bit() {
    // The banked counterpart of the paper-4×4 literal pins: a fully
    // populated 8×8 torus with two MPMMU banks under the memory-hot
    // hotspot workload, pinned to exact cycle, delivery, deflection and
    // per-bank transaction counts — bank placement and interleaving
    // cannot drift silently, even by a change that shifts every run of a
    // rebuilt binary the same way.
    let run = || {
        let sys = SystemConfig::builder()
            .topology(Topology::new(8, 8).expect("8x8 torus"))
            .compute_pes(62)
            .memory_banks(2)
            .cycle_limit(200_000_000)
            .build()
            .expect("62-PE 2-bank configuration");
        hotspot::run(&sys, &HotspotConfig { ops_per_rank: 6 }).expect("2-bank hotspot run")
    };
    let a = run();
    assert_eq!(fingerprint(&a.run), PIN_2BANK_8X8, "2-bank 8x8 fingerprint drifted");
    assert_eq!(a.cycles, PIN_2BANK_8X8_WINDOW, "hotspot window drifted");
    assert_eq!(a.run.banks.len(), 2);
    for (bank, pin) in a.run.banks.iter().zip(PIN_2BANK_8X8_PER_BANK) {
        assert_eq!(bank.node.index(), pin.0, "bank placement drifted");
        assert_eq!(bank.mpmmu.single_reads.get(), pin.1, "bank {} reads drifted", bank.node);
        assert_eq!(bank.mpmmu.single_writes.get(), pin.2, "bank {} writes drifted", bank.node);
    }
    // The interleave splits the strided traffic evenly over both banks.
    let (w0, w1) =
        (a.run.banks[0].mpmmu.single_writes.get(), a.run.banks[1].mpmmu.single_writes.get());
    assert_eq!(w0 + w1, 62 * 6);
    assert_eq!(w0, w1, "even/odd line split must be exact for a line-strided walk");
    // And run-over-run determinism still holds.
    let b = run();
    assert_eq!(fingerprint(&b.run), PIN_2BANK_8X8);
}

/// Literal 2-bank 8×8 hotspot fingerprint (captured at introduction).
const PIN_2BANK_8X8: Fingerprint = (11417, 2476, 936, Some(62));
/// Rank 0's measured hotspot window for the same run.
const PIN_2BANK_8X8_WINDOW: u64 = 10735;
/// Per-bank `(node, single_reads, single_writes)` for the same run.
const PIN_2BANK_8X8_PER_BANK: [(usize, u64, u64); 2] = [(0, 186, 186), (4, 186, 186)];

#[test]
fn pingpong_fingerprint_stable_across_runs() {
    let run = || System::run(&cfg(2), &[], pingpong_kernels()).expect("pingpong run");
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.fabric_delivered > 0, "pingpong must use the fabric");
}

#[test]
fn reduce_fingerprint_stable_across_runs() {
    let run = || System::run(&cfg(6), &[], reduce_kernels(6)).expect("reduce run");
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.fabric_delivered > 0, "reduce must use the fabric");
}

#[test]
fn gather_fingerprint_stable_and_deflecting() {
    let run = || System::run(&cfg(8), &[], gather_kernels(8)).expect("gather run");
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // Seven concurrent senders into one ejection channel: the deflection
    // path must actually fire, and its count must be reproduced exactly.
    assert!(a.fabric_deflections > 0, "gather must exercise deflection");
}

#[test]
fn collective_fingerprints_stable_per_algorithm_and_distinct() {
    // Each algorithm is bit-deterministic run over run, and the three
    // genuinely schedule different traffic (if two fingerprints collided
    // the "pluggable" dispatch would not be doing anything).
    let run = |algo: CollectiveAlgo| {
        let cfg = SystemConfig::builder()
            .compute_pes(7)
            .collective_algo(algo)
            .cycle_limit(50_000_000)
            .build()
            .unwrap();
        System::run(&cfg, &[], allreduce_kernels(7)).expect("collective run")
    };
    let mut prints = Vec::new();
    for algo in CollectiveAlgo::ALL {
        let a = run(algo);
        let b = run(algo);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{algo} not deterministic");
        prints.push(fingerprint(&a));
    }
    assert_ne!(prints[0], prints[1], "linear and binomial must differ");
    assert_ne!(prints[0], prints[2], "linear and doubling must differ");
    assert_ne!(prints[1], prints[2], "binomial and doubling must differ");
}

#[test]
fn duplex_exchange_fingerprint_stable_across_runs() {
    // The full-duplex sendrecv engine (polling included) must be exactly
    // as deterministic as plain send/recv: a windowed symmetric exchange
    // plus a chained halo shape, fingerprinted run over run.
    let kernels = || -> Vec<Kernel> {
        (0..4)
            .map(|r| {
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    let payload: Vec<u32> = (0..64).map(|i| (r * 100 + i) as u32).collect();
                    // Symmetric pairwise exchange: 0<->1, 2<->3.
                    let peer = Some(Rank::new((r ^ 1) as u8));
                    let got = comm.sendrecv(peer, &payload, peer).expect("duplex");
                    assert_eq!(got.len(), 64);
                    // Chained exchange: r -> r+1.
                    let ranks = comm.ranks();
                    let next = (r + 1 < ranks).then(|| Rank::new((r + 1) as u8));
                    let prev = (r > 0).then(|| Rank::new((r - 1) as u8));
                    let _ = comm.sendrecv(next, &payload, prev);
                }) as Kernel
            })
            .collect()
    };
    let run = || System::run(&cfg(4), &[], kernels()).expect("duplex run");
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.fabric_delivered > 0);
}

#[test]
fn jacobi_8x8_63pe_fingerprint_stable_across_runs() {
    // Topology-generic assembly pinned bit-for-bit: a fully populated
    // 8x8 torus (63 compute PEs, one interior row each) must reproduce
    // exact cycle, delivery and deflection counts run over run.
    let run = || {
        let sys = SystemConfig::builder()
            .topology(Topology::new(8, 8).expect("8x8 torus"))
            .compute_pes(63)
            .cycle_limit(400_000_000)
            .build()
            .expect("63-PE configuration");
        let jcfg = JacobiConfig::new(65, JacobiVariant::HybridFullMp)
            .with_warmup_iters(0)
            .with_measured_iters(1);
        jacobi::run(&sys, &jcfg).expect("8x8 Jacobi run")
    };
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a.run), fingerprint(&b.run));
    assert_eq!(a.cycles_per_iter, b.cycles_per_iter);
    assert!(a.run.fabric_delivered > 0, "63-PE Jacobi must use the fabric");
    assert_eq!(a.run.pe.len(), 63);
}

#[test]
fn per_pe_stats_stable_across_runs() {
    // The engine rewrite must not change *per-PE* counters either (a PE
    // ticked a different number of times would show up here first).
    let run = || System::run(&cfg(4), &[], reduce_kernels(4)).expect("run");
    let a = run();
    let b = run();
    for (pa, pb) in a.pe.iter().zip(&b.pe) {
        assert_eq!(pa.engine.requests.get(), pb.engine.requests.get());
        assert_eq!(pa.engine.compute_cycles.get(), pb.engine.compute_cycles.get());
        assert_eq!(pa.engine.send_cycles.get(), pb.engine.send_cycles.get());
        assert_eq!(pa.engine.packets_sent.get(), pb.engine.packets_sent.get());
        assert_eq!(pa.bridge.transactions.get(), pb.bridge.transactions.get());
    }
}
