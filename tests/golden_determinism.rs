//! Golden determinism tests for the cycle engine's hot path.
//!
//! Committed *before* the zero-allocation/activity-scheduled rewrite of
//! the router, network and cycle engine: these tests pin the observable
//! behavior of full-system runs — exact cycle counts, delivered-flit
//! counts and deflection counts — so engine work is provably
//! behavior-preserving. Any optimization that changes one of these
//! numbers is a functional change, not an optimization.
//!
//! The workloads run through the `Empi` communicator with its default
//! `Linear` algorithm, which reproduces the seed's rank-0-centred message
//! patterns — keeping `Linear` the default is precisely what pins the
//! paper-4×4 fingerprints. The tree algorithms get their own stability
//! pins below.

use medea::apps::jacobi::{self, JacobiConfig, JacobiVariant};
use medea::core::api::PeApi;
use medea::core::system::{Kernel, RunResult, System};
use medea::core::{CollectiveAlgo, Empi, SystemConfig, Topology};
use medea::sim::ids::Rank;

fn cfg(pes: usize) -> SystemConfig {
    SystemConfig::builder().compute_pes(pes).cycle_limit(50_000_000).build().unwrap()
}

/// The fields of [`RunResult`] every engine variant must reproduce
/// bit-identically.
fn fingerprint(r: &RunResult) -> (u64, u64, u64, Option<u64>) {
    (r.cycles, r.fabric_delivered, r.fabric_deflections, r.fabric_max_latency)
}

/// One-word ping-pong over raw TIE messages, 40 round trips.
fn pingpong_kernels() -> Vec<Kernel> {
    let ping: Kernel = Box::new(|api: PeApi| {
        for i in 1..=40u32 {
            api.send_to_rank(Rank::new(1), &[i]);
            let back = api.recv_from_rank(Rank::new(1));
            assert_eq!(back[0], i);
        }
    });
    let pong: Kernel = Box::new(|api: PeApi| {
        for _ in 1..=40u32 {
            let v = api.recv_from_rank(Rank::new(0));
            api.send_to_rank(Rank::new(0), &v);
        }
    });
    vec![ping, pong]
}

/// Gather-to-root + broadcast all-reduce, hand-rolled on the
/// communicator's point-to-point ops with a compute phase so timed stalls
/// and traffic interleave. Deliberately NOT `Empi::allreduce`: this is
/// the seed's exact call sequence (barrier, then per-rank send/recv
/// pairs), kept verbatim so the fingerprint pins the same behavior the
/// pre-communicator engine produced. The library collectives get their
/// own per-algorithm fingerprints below.
fn reduce_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                comm.compute(50 + 137 * r as u64);
                comm.barrier();
                let mine = r as f64 + 0.5;
                let total = if comm.rank().is_master() {
                    let mut acc = mine;
                    for src in 1..comm.ranks() {
                        acc = comm.fadd(acc, comm.recv_f64(Rank::new(src as u8))[0]);
                    }
                    for dst in 1..comm.ranks() {
                        comm.send_f64(Rank::new(dst as u8), &[acc]);
                    }
                    acc
                } else {
                    comm.send_f64(Rank::new(0), &[mine]);
                    comm.recv_f64(Rank::new(0))[0]
                };
                let expect = (0..comm.ranks()).map(|k| k as f64 + 0.5).sum::<f64>();
                assert_eq!(total.to_bits(), expect.to_bits());
            }) as Kernel
        })
        .collect()
}

/// The same reduction through the library collective — the surface the
/// per-algorithm fingerprint test pins.
fn allreduce_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                comm.compute(50 + 137 * r as u64);
                comm.barrier();
                let total = comm.allreduce(r as f64 + 0.5);
                let expect = (0..comm.ranks()).map(|k| k as f64 + 0.5).sum::<f64>();
                assert_eq!(total.to_bits(), expect.to_bits());
            }) as Kernel
        })
        .collect()
}

/// Every rank simultaneously streams a message to rank 0 — heavy
/// contention on the torus and the ejection channel, so the deflection
/// path is actually exercised.
fn gather_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                if r == 0 {
                    for src in 1..comm.ranks() {
                        let got = comm.recv(Rank::new(src as u8));
                        assert_eq!(got.len(), 40);
                    }
                } else {
                    let payload: Vec<u32> = (0..40).map(|i| (r * 1000 + i) as u32).collect();
                    comm.send(Rank::new(0), &payload);
                }
            }) as Kernel
        })
        .collect()
}

#[test]
fn pingpong_fingerprint_stable_across_runs() {
    let run = || System::run(&cfg(2), &[], pingpong_kernels()).expect("pingpong run");
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.fabric_delivered > 0, "pingpong must use the fabric");
}

#[test]
fn reduce_fingerprint_stable_across_runs() {
    let run = || System::run(&cfg(6), &[], reduce_kernels(6)).expect("reduce run");
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.fabric_delivered > 0, "reduce must use the fabric");
}

#[test]
fn gather_fingerprint_stable_and_deflecting() {
    let run = || System::run(&cfg(8), &[], gather_kernels(8)).expect("gather run");
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // Seven concurrent senders into one ejection channel: the deflection
    // path must actually fire, and its count must be reproduced exactly.
    assert!(a.fabric_deflections > 0, "gather must exercise deflection");
}

#[test]
fn collective_fingerprints_stable_per_algorithm_and_distinct() {
    // Each algorithm is bit-deterministic run over run, and the three
    // genuinely schedule different traffic (if two fingerprints collided
    // the "pluggable" dispatch would not be doing anything).
    let run = |algo: CollectiveAlgo| {
        let cfg = SystemConfig::builder()
            .compute_pes(7)
            .collective_algo(algo)
            .cycle_limit(50_000_000)
            .build()
            .unwrap();
        System::run(&cfg, &[], allreduce_kernels(7)).expect("collective run")
    };
    let mut prints = Vec::new();
    for algo in CollectiveAlgo::ALL {
        let a = run(algo);
        let b = run(algo);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{algo} not deterministic");
        prints.push(fingerprint(&a));
    }
    assert_ne!(prints[0], prints[1], "linear and binomial must differ");
    assert_ne!(prints[0], prints[2], "linear and doubling must differ");
    assert_ne!(prints[1], prints[2], "binomial and doubling must differ");
}

#[test]
fn duplex_exchange_fingerprint_stable_across_runs() {
    // The full-duplex sendrecv engine (polling included) must be exactly
    // as deterministic as plain send/recv: a windowed symmetric exchange
    // plus a chained halo shape, fingerprinted run over run.
    let kernels = || -> Vec<Kernel> {
        (0..4)
            .map(|r| {
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    let payload: Vec<u32> = (0..64).map(|i| (r * 100 + i) as u32).collect();
                    // Symmetric pairwise exchange: 0<->1, 2<->3.
                    let peer = Some(Rank::new((r ^ 1) as u8));
                    let got = comm.sendrecv(peer, &payload, peer).expect("duplex");
                    assert_eq!(got.len(), 64);
                    // Chained exchange: r -> r+1.
                    let ranks = comm.ranks();
                    let next = (r + 1 < ranks).then(|| Rank::new((r + 1) as u8));
                    let prev = (r > 0).then(|| Rank::new((r - 1) as u8));
                    let _ = comm.sendrecv(next, &payload, prev);
                }) as Kernel
            })
            .collect()
    };
    let run = || System::run(&cfg(4), &[], kernels()).expect("duplex run");
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.fabric_delivered > 0);
}

#[test]
fn jacobi_8x8_63pe_fingerprint_stable_across_runs() {
    // Topology-generic assembly pinned bit-for-bit: a fully populated
    // 8x8 torus (63 compute PEs, one interior row each) must reproduce
    // exact cycle, delivery and deflection counts run over run.
    let run = || {
        let sys = SystemConfig::builder()
            .topology(Topology::new(8, 8).expect("8x8 torus"))
            .compute_pes(63)
            .cycle_limit(400_000_000)
            .build()
            .expect("63-PE configuration");
        let jcfg = JacobiConfig::new(65, JacobiVariant::HybridFullMp)
            .with_warmup_iters(0)
            .with_measured_iters(1);
        jacobi::run(&sys, &jcfg).expect("8x8 Jacobi run")
    };
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a.run), fingerprint(&b.run));
    assert_eq!(a.cycles_per_iter, b.cycles_per_iter);
    assert!(a.run.fabric_delivered > 0, "63-PE Jacobi must use the fabric");
    assert_eq!(a.run.pe.len(), 63);
}

#[test]
fn per_pe_stats_stable_across_runs() {
    // The engine rewrite must not change *per-PE* counters either (a PE
    // ticked a different number of times would show up here first).
    let run = || System::run(&cfg(4), &[], reduce_kernels(4)).expect("run");
    let a = run();
    let b = run();
    for (pa, pb) in a.pe.iter().zip(&b.pe) {
        assert_eq!(pa.engine.requests.get(), pb.engine.requests.get());
        assert_eq!(pa.engine.compute_cycles.get(), pb.engine.compute_cycles.get());
        assert_eq!(pa.engine.send_cycles.get(), pb.engine.send_cycles.get());
        assert_eq!(pa.engine.packets_sent.get(), pb.engine.packets_sent.get());
        assert_eq!(pa.bridge.transactions.get(), pb.bridge.transactions.get());
    }
}
