//! Equivalence tests for the tiled parallel cycle engine.
//!
//! The tiled engine (`host_threads > 1`) is a *performance* feature with a
//! *correctness* contract: it must be observationally indistinguishable
//! from the sequential engine, bit for bit. These tests pin that contract
//! three ways:
//!
//! * **Numeric equivalence** — for every pinned paper workload and a
//!   seeded mixed op-soup, a run at 2/3/4/7 host threads reproduces the
//!   single-thread `RunResult` counter for counter: cycles, every fabric
//!   counter, the full latency histogram, every per-PE counter and every
//!   per-bank counter, across tori, PE counts and bank counts.
//! * **Golden fingerprints** — the paper-4×4 pins (literal values carried
//!   from `tests/golden_determinism.rs`) hold verbatim at
//!   `host_threads(4)`. The parallel engine is not "equivalent to
//!   itself"; it is equivalent to the pre-parallel engine.
//! * **Trace equivalence** — a `RingSink` capture of a tiled run contains,
//!   per cycle, exactly the same multiset of events as the sequential
//!   capture. Within a cycle the tiled merge is tile-major while the
//!   sequential engine is phase-major, so order inside a cycle is not
//!   pinned — the multiset is.
//!
//! Error paths are part of the contract too: a deadlocked workload must
//! produce the *identical* `RunError` (cycle of detection and diagnostic
//! string included) at every thread count.

use std::collections::HashMap;

use medea::core::api::PeApi;
use medea::core::system::{Kernel, RunResult, System};
use medea::core::{Empi, SystemConfig, Topology};
use medea::sim::ids::Rank;
use medea::sim::rng::SplitMix64;
use medea::sim::Cycle;
use medea::trace::{RingSink, TraceConfig};

/// Thread counts the tiled engine must match single-thread at: even and
/// odd, dividing and not dividing the node count.
const THREADS: [usize; 4] = [2, 3, 4, 7];

fn cfg(pes: usize, threads: usize) -> SystemConfig {
    SystemConfig::builder()
        .compute_pes(pes)
        .cycle_limit(50_000_000)
        .host_threads(threads)
        .build()
        .unwrap()
}

fn cfg_on(topo: Topology, pes: usize, banks: usize, threads: usize) -> SystemConfig {
    SystemConfig::builder()
        .topology(topo)
        .compute_pes(pes)
        .memory_banks(banks)
        .cycle_limit(50_000_000)
        .host_threads(threads)
        .build()
        .unwrap()
}

/// Full numeric equality over everything a `RunResult` observes.
fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.cycles, b.cycles, "{label}: cycles");
    assert_eq!(a.fabric_delivered, b.fabric_delivered, "{label}: delivered");
    assert_eq!(a.fabric_deflections, b.fabric_deflections, "{label}: deflections");
    assert_eq!(a.fabric_mean_latency, b.fabric_mean_latency, "{label}: mean latency");
    assert_eq!(a.fabric_max_latency, b.fabric_max_latency, "{label}: max latency");
    assert_eq!(a.fabric_latency, b.fabric_latency, "{label}: latency histogram");
    assert_eq!(a.mpmmu.single_reads.get(), b.mpmmu.single_reads.get(), "{label}: mpmmu reads");
    assert_eq!(a.mpmmu.single_writes.get(), b.mpmmu.single_writes.get(), "{label}: mpmmu writes");
    assert_eq!(a.mpmmu.locks_granted.get(), b.mpmmu.locks_granted.get(), "{label}: locks");
    assert_eq!(a.mpmmu.lock_nacks.get(), b.mpmmu.lock_nacks.get(), "{label}: lock nacks");
    assert_eq!(a.mpmmu.busy_cycles.get(), b.mpmmu.busy_cycles.get(), "{label}: mpmmu busy");
    assert_eq!(a.pe.len(), b.pe.len(), "{label}: pe count");
    for (i, (pa, pb)) in a.pe.iter().zip(&b.pe).enumerate() {
        assert_eq!(pa.engine.requests.get(), pb.engine.requests.get(), "{label}: pe{i} requests");
        assert_eq!(
            pa.engine.compute_cycles.get(),
            pb.engine.compute_cycles.get(),
            "{label}: pe{i} compute"
        );
        assert_eq!(pa.engine.mem_cycles.get(), pb.engine.mem_cycles.get(), "{label}: pe{i} mem");
        assert_eq!(pa.engine.send_cycles.get(), pb.engine.send_cycles.get(), "{label}: pe{i} send");
        assert_eq!(
            pa.engine.recv_wait_cycles.get(),
            pb.engine.recv_wait_cycles.get(),
            "{label}: pe{i} recv wait"
        );
        assert_eq!(pa.cache.load_hits.get(), pb.cache.load_hits.get(), "{label}: pe{i} hits");
        assert_eq!(pa.cache.load_misses.get(), pb.cache.load_misses.get(), "{label}: pe{i} misses");
        assert_eq!(
            pa.bridge.transactions.get(),
            pb.bridge.transactions.get(),
            "{label}: pe{i} bridge"
        );
        assert_eq!(
            pa.bridge.lock_retries.get(),
            pb.bridge.lock_retries.get(),
            "{label}: pe{i} lock retries"
        );
        assert_eq!(pa.tie.flits_received.get(), pb.tie.flits_received.get(), "{label}: pe{i} tie");
    }
    assert_eq!(a.banks.len(), b.banks.len(), "{label}: bank count");
    for (ba, bb) in a.banks.iter().zip(&b.banks) {
        assert_eq!(ba.node, bb.node, "{label}: bank node");
        assert_eq!(
            ba.mpmmu.single_reads.get(),
            bb.mpmmu.single_reads.get(),
            "{label}: bank {} reads",
            ba.node
        );
        assert_eq!(
            ba.mpmmu.single_writes.get(),
            bb.mpmmu.single_writes.get(),
            "{label}: bank {} writes",
            ba.node
        );
        assert_eq!(
            ba.mpmmu.busy_cycles.get(),
            bb.mpmmu.busy_cycles.get(),
            "{label}: bank {} busy",
            ba.node
        );
    }
}

// ---------------------------------------------------------------------
// Workloads (shapes shared with tests/golden_determinism.rs)
// ---------------------------------------------------------------------

fn pingpong_kernels() -> Vec<Kernel> {
    let ping: Kernel = Box::new(|api: PeApi| {
        for i in 1..=40u32 {
            api.send_to_rank(Rank::new(1), &[i]);
            let back = api.recv_from_rank(Rank::new(1));
            assert_eq!(back[0], i);
        }
    });
    let pong: Kernel = Box::new(|api: PeApi| {
        for _ in 1..=40u32 {
            let v = api.recv_from_rank(Rank::new(0));
            api.send_to_rank(Rank::new(0), &v);
        }
    });
    vec![ping, pong]
}

fn reduce_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                comm.compute(50 + 137 * r as u64);
                comm.barrier();
                let mine = r as f64 + 0.5;
                let total = if comm.rank().is_master() {
                    let mut acc = mine;
                    for src in 1..comm.ranks() {
                        acc = comm.fadd(acc, comm.recv_f64(Rank::new(src as u8))[0]);
                    }
                    for dst in 1..comm.ranks() {
                        comm.send_f64(Rank::new(dst as u8), &[acc]);
                    }
                    acc
                } else {
                    comm.send_f64(Rank::new(0), &[mine]);
                    comm.recv_f64(Rank::new(0))[0]
                };
                let expect = (0..comm.ranks()).map(|k| k as f64 + 0.5).sum::<f64>();
                assert_eq!(total.to_bits(), expect.to_bits());
            }) as Kernel
        })
        .collect()
}

fn gather_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                if r == 0 {
                    for src in 1..comm.ranks() {
                        let got = comm.recv(Rank::new(src as u8));
                        assert_eq!(got.len(), 40);
                    }
                } else {
                    let payload: Vec<u32> = (0..40).map(|i| (r * 1000 + i) as u32).collect();
                    comm.send(Rank::new(0), &payload);
                }
            }) as Kernel
        })
        .collect()
}

fn sharedmem_kernels(ranks: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                const COUNTER: u32 = 0x100;
                const LOCK: u32 = 0x200;
                for _ in 0..6 {
                    api.lock(LOCK);
                    let v = api.uncached_load_u32(COUNTER);
                    api.uncached_store_u32(COUNTER, v + 1);
                    api.unlock(LOCK);
                }
                api.store_f64(api.private_base(), r as f64);
                api.flush_line(api.private_base());
            }) as Kernel
        })
        .collect()
}

/// Seeded mixed op soup + ring exchange + barrier + allreduce: every
/// layer (cache, MPMMU, TIE, collectives) fires with data-dependent
/// timing, so cross-tile arbitration order is genuinely stressed.
fn seeded_kernels(ranks: usize, seed: u64, ops: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                const LOCK: u32 = 0x40;
                const COUNTER: u32 = 0x44;
                let comm = Empi::new(api);
                let mut rng = SplitMix64::new(seed ^ (r as u64).wrapping_mul(0x9E37_79B9));
                let base = comm.private_base();
                for i in 0..ops {
                    match rng.next_u64() % 6 {
                        0 => comm.compute(1 + rng.next_u64() % 64),
                        1 => comm.store_u32(base + (i as u32 % 16) * 4, rng.next_u64() as u32),
                        2 => {
                            let _ = comm.load_u32(base + (i as u32 % 16) * 4);
                        }
                        3 => {
                            comm.flush_line(base);
                            comm.invalidate_line(base);
                        }
                        4 => {
                            comm.uncached_store_u32(0x80 + r as u32 * 4, i as u32);
                            let _ = comm.uncached_load_u32(0x80 + r as u32 * 4);
                        }
                        _ => {
                            comm.lock(LOCK);
                            let v = comm.uncached_load_u32(COUNTER);
                            comm.uncached_store_u32(COUNTER, v + 1);
                            comm.unlock(LOCK);
                        }
                    }
                }
                if comm.ranks() > 1 {
                    let rank = comm.rank().index();
                    let ranks = comm.ranks();
                    let next = Rank::new(((rank + 1) % ranks) as u8);
                    let prev = Rank::new(((rank + ranks - 1) % ranks) as u8);
                    let payload: Vec<u32> = (0..8).map(|i| (rank * 100 + i) as u32).collect();
                    let got = comm.sendrecv(Some(next), &payload, Some(prev)).expect("ring");
                    assert_eq!(got[0] as usize, ((rank + ranks - 1) % ranks) * 100);
                }
                comm.barrier();
                let total = comm.allreduce(r as f64 + 0.25);
                let expect = (0..comm.ranks()).map(|k| k as f64 + 0.25).sum::<f64>();
                assert_eq!(total.to_bits(), expect.to_bits());
            }) as Kernel
        })
        .collect()
}

// ---------------------------------------------------------------------
// Numeric equivalence
// ---------------------------------------------------------------------

/// The four pinned paper workloads, tiled at every thread count, equal
/// the sequential run counter for counter on the paper 4×4 torus.
#[test]
fn paper_workloads_tiled_match_sequential() {
    type Factory = fn() -> Vec<Kernel>;
    let workloads: [(&str, Factory, usize); 4] = [
        ("pingpong", pingpong_kernels as Factory, 2),
        ("reduce", (|| reduce_kernels(6)) as Factory, 6),
        ("gather", (|| gather_kernels(8)) as Factory, 8),
        ("sharedmem", (|| sharedmem_kernels(5)) as Factory, 5),
    ];
    for (name, kernels, pes) in workloads {
        let seq = System::run(&cfg(pes, 1), &[], kernels()).expect(name);
        for threads in THREADS {
            let tiled = System::run(&cfg(pes, threads), &[], kernels()).expect(name);
            assert_identical(&format!("{name}@{threads}t"), &tiled, &seq);
        }
    }
}

/// Mixed workloads across tori (square, rectangular, minimal), PE
/// counts and multi-bank layouts: tiled == sequential everywhere.
#[test]
fn mixed_workloads_across_topologies_and_banks() {
    let cases: [(u8, u8, usize, usize, u64); 5] = [
        // (cols, rows, pes, banks, seed)
        (4, 4, 8, 1, 0xD1CE),
        (4, 4, 12, 4, 0xBEEF),
        (8, 2, 10, 2, 0xCAFE),
        (2, 4, 6, 2, 0xF00D),
        (2, 2, 3, 1, 0x5EED),
    ];
    for (cols, rows, pes, banks, seed) in cases {
        let topo = Topology::new(cols, rows).expect("valid torus");
        let label = format!("{cols}x{rows}/{pes}pe/{banks}bank");
        let seq = System::run(&cfg_on(topo, pes, banks, 1), &[], seeded_kernels(pes, seed, 12))
            .expect(&label);
        for threads in THREADS {
            let tiled =
                System::run(&cfg_on(topo, pes, banks, threads), &[], seeded_kernels(pes, seed, 12))
                    .unwrap_or_else(|e| panic!("{label}@{threads}t: {e}"));
            assert_identical(&format!("{label}@{threads}t"), &tiled, &seq);
        }
    }
}

/// Requesting more threads than the host has — or than the torus has
/// nodes — degrades gracefully and still matches.
#[test]
fn oversubscribed_thread_counts_still_match() {
    let topo = Topology::new(2, 2).expect("valid torus");
    let seq = System::run(&cfg_on(topo, 3, 1, 1), &[], seeded_kernels(3, 0xA11, 8)).unwrap();
    for threads in [4, 16, 64] {
        let tiled =
            System::run(&cfg_on(topo, 3, 1, threads), &[], seeded_kernels(3, 0xA11, 8)).unwrap();
        assert_identical(&format!("2x2@{threads}t"), &tiled, &seq);
    }
}

// ---------------------------------------------------------------------
// Golden fingerprints at host_threads(4)
// ---------------------------------------------------------------------

/// The paper-4×4 pins from `tests/golden_determinism.rs`, verbatim, at
/// four host threads. This anchors the tiled engine to the *historical*
/// sequential behavior, not merely to the current build's.
#[test]
fn paper_4x4_fingerprints_hold_at_four_threads() {
    type Pin = (&'static str, fn() -> Vec<Kernel>, usize, (u64, u64, u64, Option<u64>));
    let pins: [Pin; 4] = [
        ("pingpong", pingpong_kernels, 2, (320, 80, 0, Some(1))),
        ("reduce", || reduce_kernels(6), 6, (960, 50, 0, Some(3))),
        ("gather", || gather_kernels(8), 8, (695, 343, 5081, Some(187))),
        ("sharedmem", || sharedmem_kernels(5), 5, (2263, 704, 17, Some(5))),
    ];
    for (name, kernels, pes, pin) in pins {
        let run = System::run(&cfg(pes, 4), &[], kernels()).expect(name);
        let got =
            (run.cycles, run.fabric_delivered, run.fabric_deflections, run.fabric_max_latency);
        assert_eq!(got, pin, "{name}: tiled engine drifted from the paper fingerprint");
    }
}

// ---------------------------------------------------------------------
// Trace equivalence
// ---------------------------------------------------------------------

/// Per-cycle event multisets, keyed by the event's `Debug` rendering
/// (`TraceEvent` is `Eq` but not `Ord`/`Hash`, and the rendering is
/// total and injective over the variants).
fn per_cycle_multisets(sink: &RingSink) -> HashMap<Cycle, Vec<String>> {
    let mut by_cycle: HashMap<Cycle, Vec<String>> = HashMap::new();
    for te in sink.iter() {
        by_cycle.entry(te.at).or_default().push(format!("{:?}", te.event));
    }
    for events in by_cycle.values_mut() {
        events.sort();
    }
    by_cycle
}

/// A tiled traced run captures, per cycle, the same multiset of events
/// as the sequential run — the tile-order merge loses only intra-cycle
/// ordering, never events.
#[test]
fn traced_capture_matches_sequential_per_cycle() {
    let build = |threads: usize| {
        SystemConfig::builder()
            .compute_pes(8)
            .memory_banks(2)
            .cycle_limit(50_000_000)
            .trace(TraceConfig::all())
            .host_threads(threads)
            .build()
            .unwrap()
    };
    let mut seq_sink = RingSink::new(1 << 20);
    let seq = System::run_traced(&build(1), &[], seeded_kernels(8, 0x7ACE, 10), &mut seq_sink)
        .expect("sequential traced");
    assert!(seq_sink.dropped() == 0, "ring too small to compare losslessly");
    let seq_events = per_cycle_multisets(&seq_sink);
    for threads in THREADS {
        let mut sink = RingSink::new(1 << 20);
        let tiled =
            System::run_traced(&build(threads), &[], seeded_kernels(8, 0x7ACE, 10), &mut sink)
                .expect("tiled traced");
        assert_identical(&format!("traced@{threads}t"), &tiled, &seq);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.len(), seq_sink.len(), "event count @{threads}t");
        let tiled_events = per_cycle_multisets(&sink);
        assert_eq!(tiled_events, seq_events, "per-cycle event multisets @{threads}t");
    }
}

// ---------------------------------------------------------------------
// Error-path equivalence
// ---------------------------------------------------------------------

/// Two kernels each blocked receiving from the other: the tiled engine
/// must detect the deadlock at the same cycle with the same diagnostic
/// string at every thread count.
#[test]
fn deadlock_detection_is_identical() {
    let kernels = || -> Vec<Kernel> {
        vec![
            Box::new(|api: PeApi| {
                let _ = api.recv_from_rank(Rank::new(1));
            }),
            Box::new(|api: PeApi| {
                let _ = api.recv_from_rank(Rank::new(0));
            }),
        ]
    };
    let seq = System::run(&cfg(2, 1), &[], kernels()).expect_err("must deadlock");
    for threads in THREADS {
        let tiled = System::run(&cfg(2, threads), &[], kernels()).expect_err("must deadlock");
        assert_eq!(tiled, seq, "RunError @{threads}t");
    }
}
