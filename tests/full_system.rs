//! Cross-crate integration tests: the complete stack (kernel API → PE →
//! cache → bridge → arbiter → deflection NoC → MPMMU → DDR) exercised
//! through the facade crate, the way a downstream user would.

use medea::apps::jacobi::{self, JacobiConfig, JacobiVariant};
use medea::apps::pingpong::{self, PingPongTransport};
use medea::apps::reduce::{self, ReduceTransport};
use medea::core::api::PeApi;
use medea::core::system::{Kernel, System};
use medea::core::{CachePolicy, CollectiveAlgo, Empi, FabricKind, SystemConfig};
use medea::sim::ids::Rank;

fn sys(pes: usize) -> SystemConfig {
    SystemConfig::builder()
        .compute_pes(pes)
        .cache_bytes(16 * 1024)
        .cycle_limit(400_000_000)
        .build()
        .expect("valid configuration")
}

#[test]
fn jacobi_all_variants_validate_at_scale() {
    for variant in [
        JacobiVariant::HybridFullMp,
        JacobiVariant::HybridSyncOnly,
        JacobiVariant::PureSharedMemory,
    ] {
        let jcfg = JacobiConfig::new(16, variant)
            .with_warmup_iters(1)
            .with_measured_iters(2)
            .with_validation();
        let outcome =
            jacobi::run(&sys(6), &jcfg).unwrap_or_else(|e| panic!("{variant} failed: {e}"));
        jacobi::validate_against_reference(&jcfg, &outcome)
            .unwrap_or_else(|e| panic!("{variant} wrong: {e}"));
    }
}

#[test]
fn jacobi_scales_with_cores_when_cache_fits() {
    let jcfg = JacobiConfig::new(24, JacobiVariant::HybridFullMp);
    let t2 = jacobi::run(&sys(2), &jcfg).unwrap().cycles_per_iter;
    let t8 = jacobi::run(&sys(8), &jcfg).unwrap().cycles_per_iter;
    assert!(t8 * 2 < t2, "8 cores ({t8}) should be at least 2x faster than 2 cores ({t2})");
}

#[test]
fn write_through_slower_than_write_back() {
    let mk = |policy| {
        SystemConfig::builder()
            .compute_pes(4)
            .cache_bytes(16 * 1024)
            .cache_policy(policy)
            .cycle_limit(400_000_000)
            .build()
            .unwrap()
    };
    let jcfg = JacobiConfig::new(16, JacobiVariant::HybridFullMp);
    let wb = jacobi::run(&mk(CachePolicy::WriteBack), &jcfg).unwrap().cycles_per_iter;
    let wt = jacobi::run(&mk(CachePolicy::WriteThrough), &jcfg).unwrap().cycles_per_iter;
    assert!(wt > wb * 2, "WT ({wt}) must be much slower than WB ({wb})");
}

#[test]
fn small_cache_hits_the_memory_wall() {
    let mk = |kb: usize| {
        SystemConfig::builder()
            .compute_pes(2)
            .cache_bytes(kb * 1024)
            .cycle_limit(400_000_000)
            .build()
            .unwrap()
    };
    let jcfg = JacobiConfig::new(24, JacobiVariant::HybridFullMp);
    let small = jacobi::run(&mk(2), &jcfg).unwrap();
    let large = jacobi::run(&mk(32), &jcfg).unwrap();
    assert!(
        small.cycles_per_iter > large.cycles_per_iter,
        "2 kB ({}) must be slower than 32 kB ({})",
        small.cycles_per_iter,
        large.cycles_per_iter
    );
    assert!(
        small.run.l1_miss_rate().unwrap() > large.run.l1_miss_rate().unwrap(),
        "miss rates must order accordingly"
    );
}

#[test]
fn hybrid_beats_pure_sm_and_sync_dominates() {
    // E5/E6 in miniature: full-MP ≥ sync-only ≥ ... both beat pure SM, and
    // the sync-only variant captures most of the gain.
    let n = 16;
    let run =
        |variant| jacobi::run(&sys(4), &JacobiConfig::new(n, variant)).unwrap().cycles_per_iter;
    let full = run(JacobiVariant::HybridFullMp);
    let sync_only = run(JacobiVariant::HybridSyncOnly);
    let pure = run(JacobiVariant::PureSharedMemory);
    assert!(pure > full, "pure SM {pure} must lose to hybrid {full}");
    assert!(pure > sync_only, "pure SM {pure} must lose to sync-only {sync_only}");
    let full_gain = pure as f64 / full as f64;
    let sync_gain = pure as f64 / sync_only as f64;
    assert!(
        sync_gain / full_gain > 0.5,
        "synchronization should account for most of the gain \
         (sync {sync_gain:.2}x of full {full_gain:.2}x)"
    );
}

#[test]
fn ideal_fabric_bounds_the_real_one() {
    let mk = |fabric| {
        SystemConfig::builder()
            .compute_pes(6)
            .cache_bytes(4 * 1024)
            .fabric(fabric)
            .cycle_limit(400_000_000)
            .build()
            .unwrap()
    };
    let jcfg = JacobiConfig::new(16, JacobiVariant::HybridFullMp);
    let real = jacobi::run(&mk(FabricKind::Deflection), &jcfg).unwrap().cycles_per_iter;
    let ideal = jacobi::run(&mk(FabricKind::Ideal), &jcfg).unwrap().cycles_per_iter;
    assert!(ideal <= real, "ideal {ideal} must not exceed real {real}");
}

#[test]
fn microbenchmarks_confirm_mp_advantage() {
    let s = sys(2);
    let mp = pingpong::run(&s, PingPongTransport::MessagePassing, 100).unwrap();
    let sm = pingpong::run(&s, PingPongTransport::SharedMemory, 100).unwrap();
    assert!(mp.cycles_per_round < sm.cycles_per_round);

    let s6 = sys(6);
    let mp_red = reduce::run(&s6, ReduceTransport::MessagePassing, |r| r as f64).unwrap();
    let sm_red = reduce::run(&s6, ReduceTransport::SharedMemory, |r| r as f64).unwrap();
    assert_eq!(mp_red.sum, 15.0);
    assert_eq!(sm_red.sum, 15.0);
    assert!(mp_red.cycles < sm_red.cycles);
}

#[test]
fn empi_collectives_compose() {
    // Ring pass-the-token, then the full collective surface back to back
    // across 5 ranks: barrier, bcast, scatter, gather, allreduce.
    let pes = 5;
    let kernels: Vec<Kernel> = (0..pes)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                let ranks = comm.ranks();
                let next = Rank::new(((r + 1) % ranks) as u8);
                let prev = Rank::new(((r + ranks - 1) % ranks) as u8);
                if r == 0 {
                    comm.send(next, &[1]);
                    let token = comm.recv(prev);
                    assert_eq!(token[0] as usize, ranks, "token incremented once per hop");
                } else {
                    let token = comm.recv(prev);
                    comm.send(next, &[token[0] + 1]);
                }
                comm.barrier();
                let root = Rank::new(2);
                let plan = comm.bcast(root, if comm.rank() == root { &[7, 8, 9] } else { &[] });
                assert_eq!(plan, vec![7, 8, 9]);
                let chunks: Vec<Vec<u32>> = (0..ranks).map(|k| vec![k as u32 * 11]).collect();
                let mine = comm.scatter(root, if comm.rank() == root { &chunks } else { &[] });
                assert_eq!(mine, vec![r as u32 * 11]);
                let gathered = comm.gather(root, &[mine[0] + 1]);
                if let Some(rows) = gathered {
                    for (k, row) in rows.iter().enumerate() {
                        assert_eq!(row, &vec![k as u32 * 11 + 1], "gather from {k}");
                    }
                }
                let sum = comm.allreduce(r as f64);
                assert_eq!(sum, (0..ranks).map(|k| k as f64).sum::<f64>());
            }) as Kernel
        })
        .collect();
    System::run(&sys(pes), &[], kernels).expect("ring");
}

#[test]
fn tree_collectives_run_the_full_stack() {
    // The non-default algorithms drive the same composed surface.
    for algo in [CollectiveAlgo::BinomialTree, CollectiveAlgo::RecursiveDoubling] {
        let cfg = SystemConfig::builder()
            .compute_pes(6)
            .collective_algo(algo)
            .cycle_limit(400_000_000)
            .build()
            .unwrap();
        let kernels: Vec<Kernel> = (0..6)
            .map(|r| {
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    comm.barrier();
                    let root = Rank::new(3);
                    let msg = comm.bcast(root, if comm.rank() == root { &[42] } else { &[] });
                    assert_eq!(msg, vec![42]);
                    let sum = comm.reduce(root, 1.5);
                    if comm.rank() == root {
                        assert_eq!(sum.unwrap(), 9.0);
                    }
                    assert_eq!(comm.allreduce(r as f64 + 0.5), 18.0);
                    comm.barrier();
                }) as Kernel
            })
            .collect();
        System::run(&cfg, &[], kernels).unwrap_or_else(|e| panic!("{algo}: {e}"));
    }
}

#[test]
fn determinism_across_full_stack() {
    let jcfg = JacobiConfig::new(16, JacobiVariant::PureSharedMemory);
    let a = jacobi::run(&sys(5), &jcfg).unwrap();
    let b = jacobi::run(&sys(5), &jcfg).unwrap();
    assert_eq!(a.cycles_per_iter, b.cycles_per_iter);
    assert_eq!(a.run.cycles, b.run.cycles);
    assert_eq!(a.run.fabric_delivered, b.run.fabric_delivered);
    assert_eq!(a.run.mpmmu.lock_nacks.get(), b.run.mpmmu.lock_nacks.get());
}

#[test]
fn fifteen_pe_maximum_configuration() {
    // The largest system the 4-bit source-id field allows: 15 PEs + MPMMU.
    let jcfg = JacobiConfig::new(30, JacobiVariant::HybridFullMp).with_validation();
    let outcome = jacobi::run(&sys(15), &jcfg).unwrap();
    jacobi::validate_against_reference(&jcfg, &outcome).unwrap();
    assert!(outcome.run.fabric_deflections > 0, "15 PEs must contend somewhere");
}
